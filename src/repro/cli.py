"""Command-line interface: run monitored workloads and analyze traces.

Usage (after ``pip install -e .``):

    python -m repro quickstart
    python -m repro sweep --knob staleness --values 1,2,5,10
    python -m repro bookstore --latency 500 --purchases 1000
    python -m repro record --out run.jsonl --buus 500
    python -m repro analyze run.jsonl --sampling-rate 5
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.sim import SimConfig, Simulator, read_modify_write
from repro.sim.traces import Trace


def _batch_size(value: str) -> int:
    """Argparse type for ``--batch-size``: a positive integer."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch size must be an integer, got {value!r} — operations "
            f"are grouped into batches of this many per ingest call"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {parsed}; use 1 to process "
            f"operations individually (the default 256 amortizes one lock "
            f"acquisition and one detector feed per batch)"
        )
    return parsed


def _loop_threads(value: str) -> int:
    """Argparse type for ``--loop-threads``: a non-negative integer."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--loop-threads must be an integer, got {value!r}"
        ) from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            f"--loop-threads must be >= 0, got {parsed}; 0 selects the "
            f"legacy thread-per-connection transport"
        )
    return parsed


def _max_connections(value: str) -> int:
    """Argparse type for ``--max-connections``: a positive integer."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--max-connections must be an integer, got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"--max-connections must be >= 1, got {parsed}; omit the flag "
            f"for unlimited admission"
        )
    return parsed


def _idle_timeout(value: str) -> float:
    """Argparse type for ``--idle-timeout``: seconds >= 0 (0 disables)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--idle-timeout must be a number of seconds, got {value!r}"
        ) from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            f"--idle-timeout must be >= 0 seconds, got {parsed}; use 0 to "
            f"disable the idle deadline"
        )
    return parsed


def _drain_timeout(value: str) -> float:
    """Argparse type for ``--drain-timeout``: seconds > 0."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--drain-timeout must be a number of seconds, got {value!r}"
        ) from None
    if parsed <= 0:
        raise argparse.ArgumentTypeError(
            f"--drain-timeout must be > 0 seconds of total graceful-drain "
            f"budget, got {parsed}"
        )
    return parsed


def _add_monitor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sampling-rate", type=int, default=1,
                        help="item sampling rate sr (p = 1/sr)")
    parser.add_argument("--no-mob", action="store_true",
                        help="disable memory-optimized bookkeeping")
    parser.add_argument("--pruning", default="both",
                        choices=["none", "ect", "distance", "both"])
    parser.add_argument("--columnar", action="store_true",
                        help="vectorized columnar ingest (numpy; falls "
                             "back to the per-op path without it)")
    parser.add_argument("--seed", type=int, default=0)


def _monitor_from(args: argparse.Namespace) -> RushMon:
    return RushMon(RushMonConfig.from_cli_args(args))


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threads", type=int, default=0,
                        help="drive the workload from N real threads through "
                             "the concurrent RushMonService (0 = serial)")
    parser.add_argument("--shards", type=int, default=8,
                        help="key-hash shards of the concurrent collector")
    parser.add_argument("--detect-interval", type=float, default=0.02,
                        help="seconds between background detection passes")


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--latency", type=int, default=100,
                        help="write visibility latency (simulator steps)")
    parser.add_argument("--staleness", type=int, default=0,
                        help="staleness bound s (0 = unbounded)")
    parser.add_argument("--jitter", type=int, default=10,
                        help="compute-time jitter between reads and writes")
    parser.add_argument("--isolation", default="none",
                        choices=["none", "serializable", "snapshot"])


def _sim_config(args: argparse.Namespace) -> SimConfig:
    return SimConfig(
        num_workers=args.workers,
        write_latency=args.latency,
        staleness_bound=args.staleness or None,
        compute_jitter=args.jitter,
        isolation=args.isolation,
        seed=args.seed,
    )


def _counter_buus(count: int, keys: int, touch: int, seed: int):
    rng = random.Random(seed)
    for _ in range(count):
        picked = rng.sample(range(keys), min(touch, keys))
        yield read_modify_write([f"k{k}" for k in picked],
                                lambda v: (v or 0) + 1)


def _install_sigterm_as_interrupt():
    """Route SIGTERM through the KeyboardInterrupt graceful path.

    Returns the previous handler (pass to :func:`_restore_sigterm`), or
    ``None`` when signals can't be installed here (non-main thread —
    e.g. the in-process CLI tests)."""
    import signal

    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        return signal.signal(signal.SIGTERM, _handler)
    except ValueError:
        return None


def _restore_sigterm(previous) -> None:
    import signal

    if previous is not None:
        try:
            signal.signal(signal.SIGTERM, previous)
        except ValueError:
            pass


def _service_quickstart(args: argparse.Namespace) -> int:
    """quickstart --threads N: same workload, real threads, background
    detection via the concurrent RushMonService."""
    from repro.core.concurrent import RushMonService
    from repro.sim.scheduler import ThreadedWorkloadDriver

    service = RushMonService(RushMonConfig.from_cli_args(args))
    # Yield points widen the interleaving space the GIL would otherwise
    # make coarse — without them the toy workload is nearly anomaly-free.
    driver = ThreadedWorkloadDriver([service], num_threads=args.threads,
                                    seed=args.seed, yield_every=5)
    print(f"threads: {args.threads}   shards: {args.shards}")
    print("window  ops   est 2-cycles  est 3-cycles  top pattern")
    with service:
        for window in range(args.windows):
            driver.run(list(_counter_buus(args.buus, args.keys, args.touch,
                                          args.seed + window)))
            report = service.close_window()
            if report is None:
                continue
            top = max(report.patterns, key=report.patterns.get) \
                if report.patterns else "-"
            print(f"{window:>6}  {report.operations:>4}  "
                  f"{report.estimated_2:>12.1f}  {report.estimated_3:>12.1f}  "
                  f"{top}")
    e2, e3 = service.cumulative_estimates()
    print(f"\ntotal: {e2:.0f} two-cycles, {e3:.0f} three-cycles "
          f"({service.detector.num_vertices} live vertices after pruning)")
    return 0


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Run a monitored toy workload and print windowed reports."""
    if args.threads > 0:
        return _service_quickstart(args)
    monitor = _monitor_from(args)
    sim = Simulator(_sim_config(args), listeners=[monitor])
    print("window  ops   est 2-cycles  est 3-cycles  top pattern")
    for window in range(args.windows):
        sim.run(_counter_buus(args.buus, args.keys, args.touch,
                              args.seed + window))
        report = monitor.close_window(sim.now)
        top = max(report.patterns, key=report.patterns.get) \
            if report.patterns else "-"
        print(f"{window:>6}  {report.operations:>4}  "
              f"{report.estimated_2:>12.1f}  {report.estimated_3:>12.1f}  {top}")
    e2, e3 = monitor.cumulative_estimates()
    print(f"\ntotal: {e2:.0f} two-cycles, {e3:.0f} three-cycles "
          f"({monitor.detector.num_vertices} live vertices after pruning)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep one chaos knob and print anomaly estimates per value."""
    values = [int(v) for v in args.values.split(",")]
    print(f"{args.knob:>10}  est 2-cyc  est 3-cyc  per-kstep")
    for value in values:
        monitor = _monitor_from(args)
        config = _sim_config(args)
        if args.knob == "staleness":
            config.staleness_bound = value or None
        elif args.knob == "latency":
            config.write_latency = value
        elif args.knob == "workers":
            config.num_workers = value
        sim = Simulator(config, listeners=[monitor])
        sim.run(_counter_buus(args.buus, args.keys, args.touch, args.seed))
        e2, e3 = monitor.cumulative_estimates()
        rate = 1000 * (e2 + e3) / max(1, sim.now)
        print(f"{value:>10}  {e2:>9.0f}  {e3:>9.0f}  {rate:>9.2f}")
    return 0


def cmd_bookstore(args: argparse.Namespace) -> int:
    """Run the Fig 11 bookstore and print violations vs anomalies."""
    from repro.workloads.bookstore import Bookstore, BookstoreConfig

    monitor = _monitor_from(args)
    shop = Bookstore(
        BookstoreConfig(num_books=args.books, customers=args.workers,
                        books_per_order=args.order_size,
                        initial_stock=args.stock, seed=args.seed),
        _sim_config(args),
    )
    shop.simulator.subscribe(monitor)
    counter = shop.run(args.purchases)
    e2, e3 = monitor.cumulative_estimates()
    print(f"purchases: {args.purchases}")
    print(f"violation rate: {100 * counter.violation_rate:.2f}%")
    print(f"estimated anomalies: {e2:.0f} two-cycles, {e3:.0f} three-cycles")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    """Record an execution trace to a JSONL file."""
    trace = Trace()
    sim = Simulator(_sim_config(args), listeners=[trace])
    sim.run(_counter_buus(args.buus, args.keys, args.touch, args.seed))
    trace.save(args.out)
    print(f"recorded {len(trace.ops)} operations "
          f"({len(trace.commits)} BUUs) to {args.out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Replay a trace through the monitor and print exact vs estimated."""
    trace = Trace.load(args.trace)
    monitor = _monitor_from(args)
    offline = OfflineAnomalyMonitor()
    trace.replay([monitor, offline])
    e2, e3 = monitor.cumulative_estimates()
    exact = offline.exact_counts()
    print(f"operations: {len(trace.ops)}   BUUs: {len(trace.commits)}")
    print(f"exact:     {exact.two_cycles} two-cycles, "
          f"{exact.three_cycles} three-cycles")
    print(f"estimated: {e2:.1f} two-cycles, {e3:.1f} three-cycles "
          f"(sr={args.sampling_rate})")
    patterns = monitor.detector.patterns.as_dict()
    if patterns:
        print("sampled 2-cycle patterns:")
        for name, count in sorted(patterns.items(), key=lambda kv: -kv[1]):
            print(f"  {name}: {count}")
    return 0


#: Human-readable gloss per anomaly class, for ``check`` output.
_GCLASS_GLOSS = {
    "G0": "dirty write",
    "G1a": "aborted read",
    "G1b": "intermediate read",
    "G1c": "circular information flow",
    "G-SI": "write skew",
    "G2": "anti-dependency cycle",
}


def cmd_check(args: argparse.Namespace) -> int:
    """Exact offline isolation check of a recorded trace.

    Rebuilds the full dependency graph (no sampling), reports the exact
    2-/3-cycle counts the monitor estimates, and classifies every cycle
    and bad read into the G-class taxonomy with concrete witnesses.
    Exit 0 iff the history is anomaly-free.
    """
    from repro.checkers import CYCLE_CLASSES, GClass, check_trace

    trace = Trace.load(args.trace)
    report = check_trace(trace, max_cycle_length=args.max_cycle_len,
                         max_witnesses=args.witnesses)
    if args.json:
        import json

        payload = {
            "operations": report.operations,
            "buus": report.buus,
            "aborted": list(report.aborted),
            "edges": {"wr": report.edges.wr, "ww": report.edges.ww,
                      "rw": report.edges.rw,
                      "distinct": report.distinct_edges},
            "cycles": {"two": report.cycles.two_cycles,
                       "three": report.cycles.three_cycles,
                       "ss": report.cycles.ss, "dd": report.cycles.dd,
                       "sss": report.cycles.sss, "ssd": report.cycles.ssd,
                       "ddd": report.cycles.ddd},
            "serializable": report.serializable,
            "anomaly_free": report.anomaly_free,
            "max_cycle_length": report.max_cycle_length,
            "counts": {g.value: n for g, n in sorted(
                report.counts.items(), key=lambda kv: kv[0].value)},
            "witnesses": {g.value: [w.pretty() for w in ws]
                          for g, ws in report.witnesses.items()},
        }
        print(json.dumps(payload, indent=2))
        return 0 if report.anomaly_free else 1

    aborted = f"   aborted: {len(report.aborted)}" if report.aborted else ""
    print(f"operations: {report.operations}   BUUs: {report.buus}{aborted}")
    print(f"edges: wr={report.edges.wr} ww={report.edges.ww} "
          f"rw={report.edges.rw} ({report.distinct_edges} distinct)")
    print(f"exact cycles: {report.cycles.two_cycles} two-cycles "
          f"(ss={report.cycles.ss} dd={report.cycles.dd}), "
          f"{report.cycles.three_cycles} three-cycles "
          f"(sss={report.cycles.sss} ssd={report.cycles.ssd} "
          f"ddd={report.cycles.ddd})")
    if report.serializable:
        print("serializable: yes")
        head = ", ".join(str(b) for b in report.serial_order[:12])
        more = "..." if len(report.serial_order) > 12 else ""
        print(f"witness serial order: {head}{more}")
    else:
        print("serializable: NO")
    if report.counts:
        print(f"anomaly classes (cycles up to length "
              f"{report.max_cycle_length}):")
        for gclass in GClass:
            count = report.counts.get(gclass, 0)
            if not count:
                continue
            gloss = _GCLASS_GLOSS[gclass.value]
            print(f"  {gclass.value} ({gloss}): {count}")
            prefix = ("violating cycle: " if gclass in CYCLE_CLASSES
                      else "")
            for witness in report.witnesses.get(gclass, ()):
                print(f"    {prefix}{witness.pretty()}")
    if report.cycles_beyond_bound:
        print(f"  violating cycle: every cycle is longer than "
              f"--max-cycle-len {report.max_cycle_length} "
              f"(raise it to witness one)")
    if report.anomaly_free:
        print("anomaly-free: yes")
        return 0
    print("anomaly-free: NO")
    return 1


def cmd_monitor(args: argparse.Namespace) -> int:
    """Run a monitored workload with live observability: the metrics
    registry of the concurrent service, optionally exported over HTTP
    (``--export-port``) and/or printed periodically (``--live``).

    Ctrl-C and SIGTERM are graceful shutdowns, not crashes: the service
    is stopped (draining the final window, writing a stop-time
    checkpoint when ``--checkpoint`` is given), the final metrics
    snapshot and report are printed, and the process exits 0.
    """
    import threading
    import time as _time

    from repro.core.concurrent import RushMonService
    from repro.obs import MetricsExporter
    from repro.sim.scheduler import ThreadedWorkloadDriver

    if getattr(args, "workers", 0):
        return _run_cluster_monitor(args)

    service = RushMonService(RushMonConfig.from_cli_args(args),
                             record_trace=args.oracle)
    exporter = None
    if args.export_port is not None:
        exporter = MetricsExporter(service.metrics, port=args.export_port)
        exporter.start()
        print(f"metrics exported at {exporter.url}/metrics "
              f"(JSON at /metrics.json)")

    watched = [
        "rushmon_collector_ops_total",
        "rushmon_collector_edges_total",
        "rushmon_service_events_processed_total",
        "rushmon_service_passes_total",
        "rushmon_detector_live_vertices",
        "rushmon_service_report_age_seconds",
    ]
    interrupted = False
    # SIGTERM (systemd stop, `kill`, container teardown) takes the same
    # graceful path as Ctrl-C: raise KeyboardInterrupt in the main
    # thread so the finally below drains, checkpoints and reports.
    previous_sigterm = _install_sigterm_as_interrupt()
    try:
        # Workload construction is interruptible too (it dominates
        # startup for large --buus), so it lives inside the handler.
        driver = ThreadedWorkloadDriver([service], num_threads=args.threads,
                                        seed=args.seed, yield_every=5)
        workload = list(
            _counter_buus(args.buus, args.keys, args.touch, args.seed)
        )
        service.start()
        if args.live:
            done = threading.Event()

            def _drive() -> None:
                try:
                    driver.run(workload)
                except Exception:
                    pass  # service stopped mid-run (Ctrl-C shutdown)
                finally:
                    done.set()

            worker = threading.Thread(target=_drive, daemon=True)
            worker.start()
            short = [n.replace("rushmon_", "") for n in watched]
            print("  ".join(short))
            while not done.wait(args.interval):
                snap = service.metrics.snapshot()
                cells = []
                for name, label in zip(watched, short):
                    value = snap.get(name, 0)
                    text = (f"{value:.6g}" if isinstance(value, float)
                            else str(value))
                    cells.append(text.rjust(len(label)))
                print("  ".join(cells))
            worker.join()
        else:
            driver.run(workload)
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted — stopping service and draining the final "
              "window")
    finally:
        _restore_sigterm(previous_sigterm)
        service.stop()
        if args.checkpoint is not None:
            print(f"stop-time checkpoint written to {args.checkpoint}")
        if exporter is not None and (interrupted or not args.hold):
            exporter.stop()

    snap = service.metrics.snapshot()
    if args.json:
        print(service.metrics.render_json())
    else:
        print()
        print("final metrics snapshot:")
        for name in sorted(snap):
            value = snap[name]
            if isinstance(value, dict):
                value = (f"count={value['count']} sum={value['sum']:.6g} "
                         f"max={value['max']:.6g}")
            print(f"  {name} = {value}")
    report = service.latest_report()
    if report is not None:
        print(f"\nlast window: {report.operations} ops, "
              f"est {report.estimated_2:.1f} two-cycles, "
              f"{report.estimated_3:.1f} three-cycles")
    oracle_rc = 0
    if args.oracle:
        oracle_rc = _run_monitor_oracle(args, service)
    if interrupted:
        return 0
    if exporter is not None and args.hold:
        print(f"\nholding exporter at {exporter.url}/metrics — Ctrl-C to stop")
        try:
            while True:
                _time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            exporter.stop()
    return oracle_rc


def _run_cluster_monitor(args: argparse.Namespace) -> int:
    """``monitor --workers N``: the same workload against a multi-process
    :class:`~repro.cluster.ClusterMonitor` instead of the in-process
    service.

    The cluster facade owns no metrics registry, journal or checkpoint —
    those live inside the worker processes — so service-only flags are
    ignored with a warning rather than silently changing meaning.
    ``--live`` works: it prints the supervisor's per-shard health view
    (link state + consumed restart budget) alongside router throughput.
    """
    import threading as _threading
    import time as _time

    from repro.cluster import ClusterMonitor
    from repro.sim.scheduler import ThreadedWorkloadDriver

    ignored = [flag for flag, given in (
        ("--export-port", args.export_port is not None),
        ("--checkpoint", args.checkpoint is not None),
        ("--oracle", args.oracle),
        ("--journal-capacity", args.journal_capacity is not None),
    ) if given]
    if ignored:
        print(f"cluster mode ignores {', '.join(ignored)} (service-only "
              f"features)", file=sys.stderr)

    cluster = ClusterMonitor(RushMonConfig.from_cli_args(args))
    stop_live = _threading.Event()

    def _live_loop() -> None:
        while not stop_live.wait(args.interval):
            shards = cluster.shard_health()
            if not shards:
                continue
            states = " ".join(
                f"{s['index']}:{s['state']}"
                + (f"(r{s['restarts']})" if s["restarts"] else "")
                for s in shards)
            print(f"[live] ops={cluster.ops_routed} "
                  f"flushes={cluster.router_flushes} shards {states}",
                  file=sys.stderr)

    if args.live:
        _threading.Thread(target=_live_loop, daemon=True,
                          name="cluster-live").start()
    previous_sigterm = _install_sigterm_as_interrupt()
    interrupted = False
    t0 = _time.perf_counter()
    try:
        driver = ThreadedWorkloadDriver([cluster], num_threads=args.threads,
                                        seed=args.seed, yield_every=5)
        workload = list(
            _counter_buus(args.buus, args.keys, args.touch, args.seed)
        )
        driver.run(workload)
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted — closing the final cluster window")
    finally:
        _restore_sigterm(previous_sigterm)
        try:
            report = cluster.close_window()
        finally:
            stop_live.set()
            cluster.stop()
    dt = _time.perf_counter() - t0
    health = report.health
    if report.degraded_shards:
        health += (" (shards "
                   + ",".join(map(str, report.degraded_shards))
                   + " lost)")
    print(f"cluster: {args.workers} workers, {report.operations} ops in "
          f"the final window ({dt:.2f}s wall), health {health}, "
          f"{cluster.worker_restarts_total} respawns")
    print(f"last window: est {report.estimated_2:.1f} two-cycles, "
          f"{report.estimated_3:.1f} three-cycles")
    return 0


def _run_monitor_oracle(args: argparse.Namespace, service) -> int:
    """``monitor --oracle``: replay the recorded trace through the exact
    checker and report divergence from the live monitor.

    At ``sr=1 --no-mob`` the monitor is supposed to be *exact*, so any
    mismatch in the 2-/3-cycle counts is a bug and the exit code says so
    (1).  At ``sr>1`` (or with MOB) the estimate is only unbiased, so
    the oracle reports relative error instead of failing.
    """
    from repro.checkers import check_trace

    oracle = check_trace(service.serialized_trace())
    classes = ", ".join(f"{g.value}={n}" for g, n in sorted(
        oracle.counts.items(), key=lambda kv: kv[0].value)) or "none"
    print(f"\noracle: exact {oracle.cycles.two_cycles} two-cycles, "
          f"{oracle.cycles.three_cycles} three-cycles; classes: {classes}")
    counts = service.counts()
    e2, e3 = service.cumulative_estimates()
    if args.sampling_rate == 1 and args.no_mob:
        if counts != oracle.cycles:
            print(f"ORACLE DIVERGENCE: monitor counted {counts} but the "
                  f"exact checker found {oracle.cycles}", file=sys.stderr)
            return 1
        print("oracle: monitor counts match the exact checker bit-exactly")
        return 0
    exact2 = oracle.cycles.two_cycles
    exact3 = oracle.cycles.three_cycles
    err2 = abs(e2 - exact2) / exact2 if exact2 else abs(e2)
    err3 = abs(e3 - exact3) / exact3 if exact3 else abs(e3)
    print(f"oracle: estimate rel. error {100 * err2:.1f}% (2-cycles), "
          f"{100 * err3:.1f}% (3-cycles) at sr={args.sampling_rate}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a RushMon server: accept networked clients and monitor their
    streamed BUU events.

    With ``--checkpoint``, the server acknowledges batches only after a
    checkpoint covers them, and an existing checkpoint file is restored
    on startup — so restarting after ``kill -9`` resumes the session
    table and counts without losing acknowledged events or
    double-counting replays.  SIGTERM/Ctrl-C drain gracefully (stop
    accepting, flush acks, final checkpoint) and exit 0.
    """
    import os
    import signal
    import threading

    from repro.core.concurrent import RushMonService
    from repro.net import RushMonServer
    from repro.obs import MetricsExporter

    # One config object carries the monitor/service fields AND the
    # serving fields (--loop-threads, --max-connections, ...), so the
    # restore path still honors the serving flags.
    cfg = RushMonConfig.from_cli_args(args)
    if args.checkpoint is not None and os.path.exists(args.checkpoint):
        service = RushMonService.restore(args.checkpoint)
        print(f"restored state from {args.checkpoint} "
              f"(events={service.processed_events}, "
              f"reports={len(service.reports)})", flush=True)
    else:
        # from_cli_args picks up --checkpoint as the config's
        # checkpoint_path; with no checkpoint_interval the service never
        # checkpoints on its own — the server owns the group-commit
        # checkpoint schedule (--checkpoint-every).
        service = RushMonService(cfg, record_trace=not args.no_trace)
    server = RushMonServer(
        service,
        host=args.host,
        port=args.port,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        loop_threads=cfg.loop_threads,
        max_connections=cfg.max_connections,
        idle_timeout=cfg.idle_timeout,
        drain_timeout=cfg.drain_timeout,
    )
    server.start()
    exporter = None
    if args.export_port is not None:
        exporter = MetricsExporter(service.metrics, port=args.export_port)
        exporter.start()
        print(f"metrics exported at {exporter.url}/metrics", flush=True)
    # The parseable line test harnesses and the quickstart grep for:
    print(f"rushmon server listening on {server.host}:{server.port}",
          flush=True)

    stop = threading.Event()

    def _handler(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:  # non-main thread (in-process tests)
            pass
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:
                pass
        print("draining: no new batches, flushing acknowledgements",
              flush=True)
        server.drain()
        if exporter is not None:
            exporter.stop()
    counts = service.counts()
    print(f"drained. sessions={server.sessions_current} "
          f"batches={server.stats['batches_accepted']} "
          f"events={server.stats['events_ingested']} "
          f"dedup_hits={server.stats['dedup_hits']}")
    print(f"sampled counts: {counts.two_cycles} two-cycles, "
          f"{counts.three_cycles} three-cycles")
    if args.checkpoint is not None:
        print(f"final checkpoint written to {args.checkpoint}")
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    """Stream a simulated workload to a RushMon server over TCP.

    The :class:`~repro.net.RushMonClient` attaches to the simulator as
    an ordinary monitor listener; every event is shipped with delivery
    guarantees (bounded queue, batching, acks, reconnect + replay).
    Exits 0 when every event was acknowledged, 1 otherwise.
    """
    from repro.net import RushMonClient

    client = RushMonClient(
        args.host, args.port,
        session=args.session,
        batch_size=args.net_batch,
        flush_interval=args.flush_interval,
        queue_capacity=args.queue_capacity,
        overflow=args.net_overflow,
    )
    client.start()
    sim = Simulator(_sim_config(args), listeners=[client])
    sim.run(_counter_buus(args.buus, args.keys, args.touch, args.seed))
    clean = client.close(timeout=args.close_timeout)
    counters = client.counters()
    print(f"emitted {counters['events_enqueued']} events in "
          f"{counters['acked_batches']} acked batches "
          f"(retransmits={counters['retransmits']}, "
          f"reconnects={counters['reconnects']}, "
          f"shed={counters['shed_events']})")
    if not clean:
        print("WARNING: close timed out with unacknowledged events",
              file=sys.stderr)
        return 1
    return 0


def cmd_bench_overhead(args: argparse.Namespace) -> int:
    """Run the monitored-vs-bare overhead harness."""
    from repro.bench.overhead import run_overhead

    rates = [int(v) for v in args.rates.split(",")]
    if args.quick:
        run_overhead(buus=300, keys=128, threads=2,
                     sampling_rates=rates or (1, 20), repeats=1,
                     batch_size=args.batch_size)
    else:
        run_overhead(buus=args.buus, keys=args.keys, threads=args.threads,
                     sampling_rates=rates, repeats=args.repeats,
                     num_shards=args.shards, seed=args.seed,
                     batch_size=args.batch_size)
    return 0


def cmd_bench_threads(args: argparse.Namespace) -> int:
    """Run the serial vs. sharded thread-scaling benchmark."""
    from repro.bench.threads import run_thread_scaling

    thread_counts = [int(v) for v in args.threads.split(",")]
    run_thread_scaling(
        thread_counts=thread_counts,
        buus=args.buus,
        keys=args.keys,
        touch=args.touch,
        sampling_rate=args.sampling_rate,
        num_shards=args.shards,
        seed=args.seed,
        batch_size=args.batch_size,
    )
    return 0


def cmd_bench_regress(args: argparse.Namespace) -> int:
    """Run the pinned-seed ingest regression suite (BENCH_ingest.json)."""
    from repro.bench.regress import run_regress

    return run_regress(
        args.out,
        quick=args.quick,
        update=args.update,
        check=args.check,
        tolerance=args.tolerance,
        batch_size=args.batch_size,
        repeats=args.repeats,
        seed=args.seed,
    )


def cmd_bench_serving(args: argparse.Namespace) -> int:
    """Run the serving soak bench (BENCH_serving.json): open-loop load
    over the event-loop server — max sustainable rate, p50/p99/p999 ack
    latency, typed-refusal behaviour under 2x overload."""
    from repro.bench.serving import run_serving

    return run_serving(
        args.out,
        quick=args.quick,
        update=args.update,
        check=args.check,
        tolerance=args.tolerance,
        seed=args.seed,
    )


def cmd_bench_cluster(args: argparse.Namespace) -> int:
    """One end-to-end cluster throughput run: the BENCH cluster row's
    protocol at a configurable scale (CI runs it small as a smoke)."""
    from repro.bench.regress import bench_cluster

    rate, p50, p99 = bench_cluster(
        num_threads=args.threads,
        ops_per_thread=args.ops,
        num_keys=args.keys,
        sr=args.sampling_rate,
        workers=args.workers,
        seed=args.seed,
        cluster_batch=args.cluster_batch,
        kill_respawn=args.kill_respawn,
    )
    suffix = " (one worker SIGKILLed and respawned mid-run)" \
        if args.kill_respawn else ""
    print(f"cluster ({args.workers} workers, {args.threads} feed threads, "
          f"{args.threads * args.ops} ops){suffix}: {rate:,.0f} ops/s")
    print(f"close latency: p50 {p50 * 1e3:.1f}ms  p99 {p99 * 1e3:.1f}ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RushMon reproduction: real-time isolation anomaly "
                    "monitoring on a simulated weak-isolation system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="monitor a toy workload")
    _add_monitor_args(quick)
    _add_sim_args(quick)
    _add_service_args(quick)
    quick.add_argument("--windows", type=int, default=5)
    quick.add_argument("--buus", type=int, default=400)
    quick.add_argument("--keys", type=int, default=20)
    quick.add_argument("--touch", type=int, default=2)
    quick.set_defaults(func=cmd_quickstart)

    sweep = sub.add_parser("sweep", help="sweep one chaos knob")
    _add_monitor_args(sweep)
    _add_sim_args(sweep)
    sweep.add_argument("--knob", default="staleness",
                       choices=["staleness", "latency", "workers"])
    sweep.add_argument("--values", default="1,2,5,10,0",
                       help="comma-separated values (0 = unbounded staleness)")
    sweep.add_argument("--buus", type=int, default=600)
    sweep.add_argument("--keys", type=int, default=40)
    sweep.add_argument("--touch", type=int, default=3)
    sweep.set_defaults(func=cmd_sweep)

    shop = sub.add_parser("bookstore", help="the Fig 11 bookstore workload")
    _add_monitor_args(shop)
    _add_sim_args(shop)
    shop.add_argument("--books", type=int, default=60)
    shop.add_argument("--order-size", type=int, default=3)
    shop.add_argument("--stock", type=int, default=3)
    shop.add_argument("--purchases", type=int, default=1000)
    shop.set_defaults(func=cmd_bookstore)

    rec = sub.add_parser("record", help="record an execution trace (JSONL)")
    _add_monitor_args(rec)
    _add_sim_args(rec)
    rec.add_argument("--out", required=True)
    rec.add_argument("--buus", type=int, default=500)
    rec.add_argument("--keys", type=int, default=30)
    rec.add_argument("--touch", type=int, default=3)
    rec.set_defaults(func=cmd_record)

    ana = sub.add_parser("analyze", help="replay a trace through the monitor")
    _add_monitor_args(ana)
    ana.add_argument("trace")
    ana.set_defaults(func=cmd_analyze)

    bench = sub.add_parser(
        "bench-threads",
        help="serial vs. sharded monitored throughput at 1/2/4/8 threads",
    )
    bench.add_argument("--threads", default="1,2,4,8",
                       help="comma-separated thread counts")
    bench.add_argument("--buus", type=int, default=4000)
    bench.add_argument("--keys", type=int, default=256)
    bench.add_argument("--touch", type=int, default=3)
    bench.add_argument("--sampling-rate", type=int, default=4)
    bench.add_argument("--shards", type=int, default=16)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--batch-size", type=_batch_size, default=256,
                       help="operations per service ingest batch")
    bench.set_defaults(func=cmd_bench_threads)

    mon = sub.add_parser(
        "monitor",
        help="run a monitored workload with live metrics "
             "(optionally exported over HTTP)",
    )
    _add_monitor_args(mon)
    mon.add_argument("--live", action="store_true",
                     help="print a metrics snapshot every --interval seconds "
                          "while the workload runs")
    mon.add_argument("--json", action="store_true",
                     help="print the final snapshot as JSON")
    mon.add_argument("--interval", type=float, default=0.5,
                     help="seconds between --live snapshots")
    mon.add_argument("--export-port", type=int, default=None,
                     help="serve Prometheus-style /metrics on this port "
                          "(0 = ephemeral; off unless given)")
    mon.add_argument("--hold", action="store_true",
                     help="keep the exporter serving after the workload "
                          "finishes (Ctrl-C to exit)")
    mon.add_argument("--threads", type=int, default=4)
    mon.add_argument("--shards", type=int, default=8)
    mon.add_argument("--detect-interval", type=float, default=0.02)
    mon.add_argument("--journal-capacity", type=int, default=None,
                     help="bound the detection journal to this many "
                          "buffered events (unbounded when omitted)")
    mon.add_argument("--overflow", default="block",
                     choices=["block", "shed", "degrade"],
                     help="what producers experience when the bounded "
                          "journal is full")
    mon.add_argument("--max-restarts", type=int, default=5,
                     help="consecutive detection failures before the "
                          "circuit breaker marks the service DEGRADED")
    mon.add_argument("--batch-size", type=_batch_size, default=256,
                     help="operations per ingest batch (one lock "
                          "acquisition and one detector feed per batch)")
    mon.add_argument("--buus", type=int, default=2000)
    mon.add_argument("--keys", type=int, default=64)
    mon.add_argument("--touch", type=int, default=3)
    mon.add_argument("--checkpoint", default=None,
                     help="write a stop-time checkpoint here on graceful "
                          "shutdown (Ctrl-C / SIGTERM included)")
    mon.add_argument("--oracle", action="store_true",
                     help="record the ingested trace and replay it through "
                          "the exact checker after the run; at sr=1 "
                          "--no-mob any count divergence exits 1")
    mon.add_argument("--workers", type=int, default=0,
                     help="drive a multi-process ClusterMonitor with this "
                          "many worker processes instead of the in-process "
                          "service (0 = in-process; service-only flags are "
                          "ignored in cluster mode)")
    mon.add_argument("--max-worker-restarts", type=int, default=None,
                     help="cluster mode: respawn attempts per worker shard "
                          "before its circuit breaker trips and reports "
                          "turn DEGRADED")
    mon.add_argument("--snapshot-interval", type=int, default=None,
                     help="cluster mode: run a shard snapshot round every N "
                          "router flushes (default: automatically once a "
                          "shard's replay journal reaches half capacity)")
    mon.add_argument("--replay-journal-capacity", type=int, default=None,
                     help="cluster mode: per-shard replay-journal bound that "
                          "triggers automatic snapshot rounds")
    mon.set_defaults(func=cmd_monitor)

    srv = sub.add_parser(
        "serve",
        help="run a RushMon server accepting networked event streams",
    )
    _add_monitor_args(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (0 = ephemeral; the bound port is "
                          "printed on the 'listening on' line)")
    srv.add_argument("--checkpoint", default=None,
                     help="durable state file: restored on startup if it "
                          "exists; batches are acknowledged only once a "
                          "checkpoint covers them")
    srv.add_argument("--checkpoint-every", type=int, default=4,
                     help="group-commit size: checkpoint + ack after this "
                          "many ingested batches")
    srv.add_argument("--export-port", type=int, default=None,
                     help="serve /metrics on this port (0 = ephemeral)")
    srv.add_argument("--shards", type=int, default=8)
    srv.add_argument("--detect-interval", type=float, default=0.02)
    srv.add_argument("--journal-capacity", type=int, default=None)
    srv.add_argument("--overflow", default="block",
                     choices=["block", "shed", "degrade"])
    srv.add_argument("--max-restarts", type=int, default=5)
    srv.add_argument("--batch-size", type=_batch_size, default=256)
    srv.add_argument("--loop-threads", type=_loop_threads, default=None,
                     help="event-loop threads multiplexing connections "
                          "(default 2; 0 = thread-per-connection)")
    srv.add_argument("--max-connections", type=_max_connections,
                     default=None,
                     help="admission cap on concurrent connections; over "
                          "it, new clients get a typed 'overloaded' error "
                          "with a retry hint (default: unlimited)")
    srv.add_argument("--idle-timeout", type=_idle_timeout, default=None,
                     help="seconds of connection silence before disconnect "
                          "(default 30; 0 disables)")
    srv.add_argument("--drain-timeout", type=_drain_timeout, default=None,
                     help="hard bound on total graceful-drain seconds "
                          "(default 5)")
    srv.add_argument("--no-trace", action="store_true",
                     help="skip trace recording (saves memory; disables "
                          "the offline differential over the checkpoint)")
    srv.set_defaults(func=cmd_serve)

    emit = sub.add_parser(
        "emit",
        help="stream a simulated workload to a RushMon server",
    )
    _add_sim_args(emit)
    emit.add_argument("--host", default="127.0.0.1")
    emit.add_argument("--port", type=int, required=True)
    emit.add_argument("--session", default=None,
                      help="session id (default: a fresh UUID)")
    emit.add_argument("--buus", type=int, default=400)
    emit.add_argument("--keys", type=int, default=20)
    emit.add_argument("--touch", type=int, default=2)
    emit.add_argument("--seed", type=int, default=0)
    emit.add_argument("--net-batch", type=int, default=64,
                      help="events per wire batch")
    emit.add_argument("--flush-interval", type=float, default=0.05,
                      help="max seconds an event waits for a full batch")
    emit.add_argument("--queue-capacity", type=int, default=8192,
                      help="bounded client queue size")
    emit.add_argument("--net-overflow", default="block",
                      choices=["block", "shed"],
                      help="producer experience when the client queue "
                           "is full")
    emit.add_argument("--close-timeout", type=float, default=10.0,
                      help="seconds to wait for the final acks on close")
    emit.set_defaults(func=cmd_emit)

    over = sub.add_parser(
        "bench-overhead",
        help="monitored vs. bare wall time (the paper's overhead claim)",
    )
    over.add_argument("--quick", action="store_true",
                      help="small workload for smoke runs")
    over.add_argument("--buus", type=int, default=4000)
    over.add_argument("--keys", type=int, default=1024)
    over.add_argument("--threads", type=int, default=4)
    over.add_argument("--repeats", type=int, default=3)
    over.add_argument("--rates", default="1,4,20",
                      help="comma-separated sampling rates")
    over.add_argument("--shards", type=int, default=16)
    over.add_argument("--seed", type=int, default=0)
    over.add_argument("--batch-size", type=_batch_size, default=256,
                      help="operations per service ingest batch")
    over.set_defaults(func=cmd_bench_overhead)

    reg = sub.add_parser(
        "bench-regress",
        help="pinned-seed ingest benchmarks vs the committed "
             "BENCH_ingest.json baseline",
    )
    reg.add_argument("--quick", action="store_true",
                     help="small stream only (what CI runs)")
    reg.add_argument("--check", action="store_true",
                     help="fail (exit 1) if the batch-vs-per-op speedup "
                          "ratios regress beyond --tolerance vs the "
                          "committed baseline")
    reg.add_argument("--update", action="store_true",
                     help="rewrite BENCH_ingest.json with fresh numbers")
    reg.add_argument("--tolerance", type=float, default=0.30,
                     help="allowed fractional regression of the speedup "
                          "ratios in --check mode (default 0.30 = 30%%; "
                          "raise on noisy runners, lower to tighten)")
    reg.add_argument("--batch-size", type=_batch_size, default=2048,
                     help="operations/edges per ingest batch")
    reg.add_argument("--repeats", type=int, default=3,
                     help="runs per bench; the minimum is kept")
    reg.add_argument("--seed", type=int, default=0)
    reg.add_argument("--out", default="BENCH_ingest.json",
                     help="results file (committed at the repo root)")
    reg.set_defaults(func=cmd_bench_regress)

    bsrv = sub.add_parser(
        "bench-serving",
        help="open-loop serving soak vs the committed BENCH_serving.json "
             "baseline (max sustainable rate, ack-latency percentiles)",
    )
    bsrv.add_argument("--quick", action="store_true",
                      help="short legs only (what CI runs)")
    bsrv.add_argument("--check", action="store_true",
                      help="fail (exit 1) if the sustained-rate ratio "
                           "regresses beyond --tolerance vs the committed "
                           "baseline")
    bsrv.add_argument("--update", action="store_true",
                      help="rewrite BENCH_serving.json with fresh numbers")
    bsrv.add_argument("--tolerance", type=float, default=0.35,
                      help="allowed fractional regression of the "
                           "machine-independent ratios in --check mode "
                           "(default 0.35; raise on noisy runners)")
    bsrv.add_argument("--seed", type=int, default=0)
    bsrv.add_argument("--out", default="BENCH_serving.json",
                      help="results file (committed at the repo root)")
    bsrv.set_defaults(func=cmd_bench_serving)

    bclu = sub.add_parser(
        "bench-cluster",
        help="end-to-end multi-process cluster ingest throughput",
    )
    bclu.add_argument("--workers", type=int, default=4,
                      help="cluster worker processes")
    bclu.add_argument("--threads", type=int, default=8,
                      help="feed threads in the parent")
    bclu.add_argument("--ops", type=int, default=40000,
                      help="operations per feed thread")
    bclu.add_argument("--keys", type=int, default=4096)
    bclu.add_argument("--sampling-rate", type=int, default=4)
    bclu.add_argument("--cluster-batch", type=int, default=1024,
                      help="events buffered per worker before a route "
                           "frame is flushed")
    bclu.add_argument("--seed", type=int, default=0)
    bclu.add_argument("--kill-respawn", action="store_true",
                      help="SIGKILL one worker mid-run so the measured "
                           "number includes a supervisor respawn-and-replay "
                           "(the run must still end healthy)")
    bclu.set_defaults(func=cmd_bench_cluster)

    chk = sub.add_parser(
        "check",
        help="exact offline isolation check of a trace (G-class taxonomy)",
    )
    chk.add_argument("trace")
    chk.add_argument("--witnesses", type=int, default=3,
                     help="max witnesses to keep per anomaly class")
    chk.add_argument("--max-cycle-len", type=int, default=4,
                     help="classify cycles up to this many edges "
                          "(2-/3-cycle counts and the serializable "
                          "verdict are exact regardless)")
    chk.add_argument("--json", action="store_true",
                     help="emit the CheckReport as JSON")
    chk.set_defaults(func=cmd_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
