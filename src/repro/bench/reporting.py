"""Plain-text tables and series for benchmark output.

Every bench regenerates a paper table/figure as rows of text; these
helpers keep the formatting uniform and write a copy to the results
directory so the numbers survive pytest's output capturing.
"""

from __future__ import annotations

import os
from typing import Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table with a title line."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def results_dir() -> str:
    """benchmarks/results/ next to the repository root (created lazily)."""
    base = os.environ.get("REPRO_RESULTS_DIR")
    if base is None:
        base = os.path.join(os.getcwd(), "benchmarks", "results")
    os.makedirs(base, exist_ok=True)
    return base


def emit(name: str, text: str) -> None:
    """Print a table and persist it to benchmarks/results/<name>.txt."""
    print()
    print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
