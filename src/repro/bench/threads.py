"""Thread-scaling throughput benchmark: serial monitor vs. sharded service.

Compares monitored ops/sec of the serial :class:`~repro.core.monitor.RushMon`
(single caller, no locks) against the concurrent
:class:`~repro.core.concurrent.RushMonService` driven by 1/2/4/8 real
threads via :class:`~repro.sim.scheduler.ThreadedWorkloadDriver`.

Interpretation note for CPython: the GIL serializes the Python-level
bookkeeping, so multi-threaded rows measure *coordination overhead*
(shard locks, journal, context switches) rather than parallel speedup;
near-flat ops/sec across thread counts is the success criterion — it
means disjoint-key writers do not contend on shared monitor state.  On
free-threaded builds the same harness measures real scaling.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace
from typing import Sequence

from repro.bench.reporting import emit, format_table
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim.buu import Buu, read_modify_write
from repro.sim.scheduler import ThreadedWorkloadDriver


def _workload(buus: int, keys: int, touch: int, seed: int) -> list[Buu]:
    rng = random.Random(seed)
    out = []
    for _ in range(buus):
        picked = rng.sample(range(keys), min(touch, keys))
        out.append(read_modify_write([f"k{k}" for k in picked],
                                     lambda v: (v or 0) + 1))
    return out


def run_thread_scaling(
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    buus: int = 4000,
    keys: int = 256,
    touch: int = 3,
    sampling_rate: int = 4,
    num_shards: int = 16,
    seed: int = 0,
    name: str = "thread_scaling",
    batch_size: int = 256,
) -> list[dict]:
    """Run the benchmark; prints a table, writes it to
    ``benchmarks/results/<name>.txt`` and returns the rows as dicts."""
    config = RushMonConfig(sampling_rate=sampling_rate, seed=seed)
    rows: list[dict] = []

    # Serial baseline: plain RushMon fed from one thread, no locks at all.
    monitor = RushMon(config)
    driver = ThreadedWorkloadDriver([monitor], num_threads=1, seed=seed)
    start = time.perf_counter()
    driver.run(_workload(buus, keys, touch, seed))
    elapsed = time.perf_counter() - start
    serial_rate = driver.ops_emitted / elapsed
    rows.append({
        "mode": "serial", "threads": 1, "ops": driver.ops_emitted,
        "seconds": elapsed, "ops_per_sec": serial_rate, "vs_serial": 1.0,
    })

    for threads in thread_counts:
        service = RushMonService(replace(config, num_shards=num_shards,
                                         detect_interval=0.01,
                                         batch_size=batch_size))
        driver = ThreadedWorkloadDriver([service], num_threads=threads,
                                        seed=seed)
        workload = _workload(buus, keys, touch, seed)
        start = time.perf_counter()
        with service:
            driver.run(workload)
        elapsed = time.perf_counter() - start
        rate = driver.ops_emitted / elapsed
        rows.append({
            "mode": "sharded", "threads": threads, "ops": driver.ops_emitted,
            "seconds": elapsed, "ops_per_sec": rate,
            "vs_serial": rate / serial_rate,
        })

    table = format_table(
        f"Thread scaling: monitored ops/sec (sr={sampling_rate}, "
        f"{num_shards} shards, {buus} BUUs x {touch} keys)",
        ["mode", "threads", "ops", "seconds", "ops/sec", "vs serial"],
        [[r["mode"], r["threads"], r["ops"], r["seconds"],
          r["ops_per_sec"], r["vs_serial"]] for r in rows],
    )
    emit(name, table)
    return rows
