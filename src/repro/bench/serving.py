"""Serving soak bench: overload behaviour of the event-loop server
(``BENCH_serving.json``).

Four legs, all driven by the coordinated-omission-safe open-loop
generator in :mod:`repro.bench.loadgen` over pre-recorded
:mod:`repro.workloads` (ycsb) wire events:

- **rate ladder** — probe increasing offered rates against a fresh
  server until one is not *sustained* (ack fraction >= 0.9 and p99
  scheduled-send->ack latency under the SLO).  The highest sustained
  rung is the **max sustainable rate**.
- **soak** — a longer run at the max sustainable rate; the committed
  p50/p99/p999 ack latencies come from here.
- **2x overload** — offer twice the max sustainable rate.  The claim
  under test is *graceful* overload: the run completes within a
  bounded window (no stall, no unbounded queueing — the emitter is
  open-loop, so a stalled server would show up as runaway latency and
  a hung drain), with any loss accounted as typed refusals or
  measured latency, never silence.
- **admission** — three sessions against ``max_connections=1``: the
  tipping session must be refused with the typed ``overloaded`` error
  (counted client-side by the emitter) before accepts pause, the
  admitted one completes normally, and the remaining one queues in
  the listen backlog until the accept pause lifts.

CI check mode
-------------
Absolute rates are machine-dependent, so ``--check`` gates only
machine-*independent* readings, each re-measured on the host against
its own re-run ladder: the ack fraction at the host's sustained rate,
the admission-refusal fraction (exactly 1 of 3 by construction), and
overload completion.  ``--update`` rewrites ``BENCH_serving.json``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.bench.loadgen import (
    LoadResult,
    OpenLoopEmitter,
    record_workload,
    run_emitters,
)
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig

#: Committed results file, at the repo root.
RESULTS_FILE = "BENCH_serving.json"

#: p99 scheduled-send->ack latency a rung must stay under to count as
#: sustained.  Generous because the reference host is single-core: the
#: server's loop threads, the service shards, and the emitter all share
#: one CPU, so scheduling jitter alone costs tens of milliseconds.
LATENCY_SLO = 0.75

#: Minimum acked/offered event fraction for a sustained rung.
ACK_FLOOR = 0.9

#: Offered rates probed, low to high (events/second).
LADDER = (500, 1000, 2000, 4000, 8000, 16000, 32000)


@contextmanager
def _server(*, seed: int = 0, **server_kwargs):
    """A bench server: sampled ingest (sr=20, the deployed
    configuration), detector passes parked out of the way, no trace
    recording — the measured cost is the serving path."""
    from repro.net.server import RushMonServer

    service = RushMonService(
        RushMonConfig(sampling_rate=20, mob=True, seed=seed, num_shards=4,
                      detect_interval=3600.0),
        record_trace=False,
    )
    server_kwargs.setdefault("ack_interval", 0.02)
    server = RushMonServer(service, faults=None, **server_kwargs)
    server.start()
    try:
        yield server
    finally:
        server.drain()


def measure_rate(records: list, rate: float, *, batch_size: int = 64,
                 seed: int = 0, **server_kwargs) -> LoadResult:
    """One open-loop run of ``records`` at ``rate`` against a fresh
    server; returns the emitter's :class:`LoadResult`."""
    with _server(seed=seed, **server_kwargs) as server:
        emitter = OpenLoopEmitter("127.0.0.1", server.port, records,
                                  target_rate=rate, batch_size=batch_size,
                                  session=f"bench-r{int(rate)}")
        return emitter.run()


def _sustained(result: LoadResult) -> bool:
    if result.error is not None or result.offered_events == 0:
        return False
    fraction = result.acked_events / result.offered_events
    return fraction >= ACK_FLOOR and result.percentile(0.99) <= LATENCY_SLO


def find_max_sustainable(records: list, *, probe_seconds: float = 1.5,
                         seed: int = 0,
                         ladder: tuple = LADDER) -> tuple[float, LoadResult]:
    """Climb the rate ladder; returns ``(rate, result)`` for the highest
    sustained rung (the lowest rung's result if nothing sustains, so
    the caller can report what went wrong)."""
    best_rate, best_result = 0.0, None
    for rate in ladder:
        need = min(len(records), max(256, int(rate * probe_seconds)))
        result = measure_rate(records[:need], rate, seed=seed)
        print(f"  ladder {rate:>6} ev/s: acked "
              f"{result.acked_events}/{result.offered_events}, "
              f"p99 {result.percentile(0.99) * 1e3:.1f}ms"
              + (f", error={result.error}" if result.error else ""))
        if not _sustained(result):
            if best_result is None:
                best_rate, best_result = float(rate), result
            break
        best_rate, best_result = float(rate), result
    assert best_result is not None
    return best_rate, best_result


def overload_leg(records: list, rate: float, *, seed: int = 0,
                 window: float = 60.0) -> tuple[LoadResult, bool]:
    """Offer 2x the sustainable rate; returns the result and whether
    the run completed inside the bounded ``window`` (graceful shedding
    rather than a stall)."""
    start = time.monotonic()
    result = measure_rate(records, rate * 2.0, seed=seed)
    return result, (time.monotonic() - start) <= window


def admission_leg(records: list, *, rate: float = 500.0,
                  seed: int = 0) -> dict:
    """Three concurrent sessions against ``max_connections=1``.

    The server admits one, refuses the tipping one with a typed
    ``overloaded`` error, then pauses accepts — so the third queues in
    the listen backlog and is admitted once capacity frees up.  Exactly
    one refusal (fraction 1/3) is therefore the deterministic
    expectation, and every admitted session must fully ack."""
    with _server(seed=seed, max_connections=1,
                 overload_retry_after=0.05) as server:
        emitters = [
            OpenLoopEmitter("127.0.0.1", server.port, records,
                            target_rate=rate, batch_size=32,
                            session=f"admission-{i}")
            for i in range(3)
        ]
        results = run_emitters(emitters)
        refusals = sum(r.admission_refusals for r in results)
        admitted = [r for r in results if r.admission_refusals == 0]
        server_refusals = server.admission_refusals_total
    acked = sum(r.acked_events for r in admitted)
    offered = max(1, sum(r.offered_events for r in admitted))
    return {
        "sessions": len(emitters),
        "refused_sessions": sum(1 for r in results if r.admission_refusals),
        "client_refusals": refusals,
        "server_refusals": server_refusals,
        "admitted_ack_fraction": acked / offered,
        "refusal_fraction": refusals / len(emitters),
    }


def run_suite(*, quick: bool, seed: int = 0) -> dict:
    """Run every leg; returns the flat results dict."""
    buus = 2500 if quick else 12000
    probe_seconds = 1.0 if quick else 2.0
    soak_seconds = 3.0 if quick else 10.0
    ladder = LADDER[:5] if quick else LADDER

    t0 = time.perf_counter()
    records = record_workload("ycsb", buus=buus, seed=seed)
    print(f"recorded {len(records)} ycsb wire events "
          f"({time.perf_counter() - t0:.1f}s)")

    print("rate ladder:")
    max_rate, _ = find_max_sustainable(records, probe_seconds=probe_seconds,
                                       seed=seed, ladder=ladder)

    need = min(len(records), max(512, int(max_rate * soak_seconds)))
    soak = measure_rate(records[:need], max_rate, seed=seed)
    soak_fraction = (soak.acked_events / soak.offered_events
                     if soak.offered_events else 0.0)
    print(f"soak @ {max_rate:.0f} ev/s: {soak.summary()}")

    over_need = min(len(records), max(512, int(max_rate * 2 * soak_seconds)))
    overload, completed = overload_leg(records[:over_need], max_rate,
                                       seed=seed)
    print(f"overload @ {max_rate * 2:.0f} ev/s (completed={completed}): "
          f"{overload.summary()}")

    admission = admission_leg(records[:min(len(records), 1000)], seed=seed)
    print(f"admission: {admission}")

    return {
        "max_sustainable_rate": max_rate,
        "soak_acked_rate": round(soak.acked_rate, 1),
        "soak_p50_ms": round(soak.percentile(0.50) * 1e3, 3),
        "soak_p99_ms": round(soak.percentile(0.99) * 1e3, 3),
        "soak_p999_ms": round(soak.percentile(0.999) * 1e3, 3),
        "sustained_ack_fraction": round(soak_fraction, 4),
        "overload_offered_events": overload.offered_events,
        "overload_acked_events": overload.acked_events,
        "overload_refused_events": overload.refused_events,
        "overload_p99_ms": round(overload.percentile(0.99) * 1e3, 3),
        "overload_completed": 1.0 if completed else 0.0,
        "admission_refusal_fraction": round(
            admission["refusal_fraction"], 4),
        "admission_server_refusals": admission["server_refusals"],
        "admission_admitted_ack_fraction": round(
            admission["admitted_ack_fraction"], 4),
    }


def check_serving(committed: dict, measured: dict,
                  tolerance: float) -> list[str]:
    """Compare the machine-independent readings against the committed
    quick-suite ones; returns human-readable failures (empty = pass)."""
    failures = []
    quick = committed.get("quick", {})
    for key in ("sustained_ack_fraction", "admission_refusal_fraction",
                "overload_completed"):
        baseline = quick.get(key)
        if baseline is None:
            failures.append(f"committed {RESULTS_FILE} has no quick.{key}; "
                            f"re-run with --update to regenerate it")
            continue
        floor = baseline * (1.0 - tolerance)
        if measured[key] < floor:
            failures.append(
                f"{key} regressed: measured {measured[key]:.3f} < floor "
                f"{floor:.3f} (committed {baseline:.3f} minus "
                f"{tolerance:.0%} tolerance)")
    return failures


def run_serving(out_path: str | Path = RESULTS_FILE, *, quick: bool = False,
                update: bool = False, check: bool = False,
                tolerance: float = 0.35, seed: int = 0) -> int:
    """Entry point behind ``python -m repro bench-serving``.

    Default: run the suite and print results.  ``--update`` also
    rewrites ``BENCH_serving.json``; ``--check`` compares the
    machine-independent readings against the committed file and
    returns 1 on a regression beyond ``tolerance``.
    """
    out_path = Path(out_path)
    results = run_suite(quick=True, seed=seed)

    if check:
        if not out_path.exists():
            print(f"check failed: {out_path} not found — run with --update "
                  f"first to commit a baseline")
            return 1
        committed = json.loads(out_path.read_text())
        failures = check_serving(committed, results, tolerance)
        if failures:
            for failure in failures:
                print(f"check failed: {failure}")
            return 1
        print(f"check passed (tolerance {tolerance:.0%})")
        if quick:
            return 0

    full_results: dict = {}
    if not quick:
        print("\nfull suite:")
        full_results = run_suite(quick=False, seed=seed)

    if update:
        if quick and out_path.exists():
            payload = json.loads(out_path.read_text())
        else:
            payload = {}
        payload["protocol"] = {
            "workload": "ycsb wire events pre-recorded through the "
                        "simulator (quick=2500 buus, full=12000)",
            "generator": "open-loop, coordinated-omission-safe: batch k "
                         "scheduled at t0 + k*batch/rate; latency measured "
                         "from the scheduled instant; typed refusals shed "
                         "with a gap-free empty resend",
            "server": "event loop (loop_threads=2), sr=20 service, 4 "
                      "shards, detect_interval=3600, ack_interval=20ms, "
                      "no trace recording",
            "sustained": f"ack fraction >= {ACK_FLOOR} and p99 <= "
                         f"{LATENCY_SLO * 1e3:.0f}ms",
            "overload": "2x the max sustainable rate must complete inside "
                        "a bounded window (graceful shed, no stall)",
            "admission": "3 sessions vs max_connections=1; the tipping "
                         "session gets a typed overloaded refusal, then "
                         "accepts pause and the rest queue in the backlog",
            "cpus": os.cpu_count(),
            "note": "absolute rates are machine-dependent; CI gates only "
                    "the quick fractions, re-measured against the host's "
                    "own re-run ladder",
        }
        payload["quick"] = results
        if full_results:
            payload["full"] = full_results
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out_path}")
    return 0
