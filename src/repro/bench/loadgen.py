"""Open-loop load generation for the serving soak bench.

A closed-loop load generator (send, wait for the ack, send the next)
silently slows down with the server, so an overloaded server looks
merely "busy" — the classic *coordinated omission* trap.  This module
is open-loop: every batch has a **scheduled** send time on a fixed
cadence derived from the target rate, and ack latency is measured from
the *scheduled* time, not the actual send.  A server that stalls for a
second therefore shows up as a second of latency on every batch that
was due in that window, exactly what a real client population would
have experienced.

Building blocks:

- :func:`record_workload` — pre-generate wire event records by running
  a :mod:`repro.workloads` generator (ycsb / bookstore) through the
  simulator once, with a recording listener.  Pre-generation keeps
  workload synthesis off the emitters' timed path.
- :class:`OpenLoopEmitter` — one client session speaking the raw
  :mod:`repro.net.protocol` on a blocking socket: a sender thread
  pacing batches on the schedule and a receiver thread timestamping
  acks.  Typed refusals (``backpressure`` / ``degraded``) are *shed*:
  the batch's events are counted as refused and its sequence number is
  resent empty, so the session stays gap-free and the refusal is
  honest load-shedding, never a stall.  An ``overloaded`` admission
  refusal at connect is counted and surfaces in the result.
- :func:`run_emitters` — drive several emitters concurrently (the
  fairness leg runs a firehose and a trickle side by side).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

from repro.net import protocol
from repro.net.protocol import FrameReader, encode_frame

__all__ = [
    "LoadResult", "OpenLoopEmitter", "record_workload", "run_emitters",
]


class _Recorder:
    """A monitor listener that turns a simulated run into wire records."""

    def __init__(self) -> None:
        self.records: list = []

    def on_operation(self, op) -> None:
        self.records.append(protocol.wire_op(op))

    def on_operations(self, ops) -> None:
        for op in ops:
            self.records.append(protocol.wire_op(op))

    def begin_buu(self, buu: int, start_time: int = 0) -> None:
        self.records.append(protocol.wire_begin(buu, start_time))

    def commit_buu(self, buu: int, commit_time: int = 0) -> None:
        self.records.append(protocol.wire_commit(buu, commit_time))


def record_workload(kind: str = "ycsb", buus: int = 200,
                    seed: int = 0) -> list:
    """Pre-generate wire records for ``buus`` transactions of ``kind``
    (``"ycsb"`` or ``"bookstore"``), deterministically per seed."""
    from repro.sim import SimConfig, Simulator

    recorder = _Recorder()
    if kind == "ycsb":
        from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

        workload = YcsbWorkload(YcsbConfig(seed=seed))
        sim = Simulator(SimConfig(num_workers=8, seed=seed),
                        listeners=[recorder])
        sim.run(workload.buus(buus))
    elif kind == "bookstore":
        from repro.workloads.bookstore import Bookstore

        store = Bookstore()
        store.simulator.subscribe(recorder)
        sim = store.simulator
        sim.run(store.purchase_buu() for _ in range(buus))
    else:
        raise ValueError(f"unknown workload kind {kind!r}; options: "
                         f"'ycsb', 'bookstore'")
    return recorder.records


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(p * len(sorted_values)))
    return sorted_values[index]


@dataclass
class LoadResult:
    """What one emitter experienced, coordinated-omission-safe."""

    offered_batches: int = 0
    offered_events: int = 0
    acked_batches: int = 0
    acked_events: int = 0
    refused_batches: int = 0
    refused_events: int = 0
    #: ``overloaded`` admission refusals at connect time.
    admission_refusals: int = 0
    #: Batches never acknowledged by the end of the drain window.
    lost_batches: int = 0
    duration: float = 0.0
    #: Scheduled-send -> ack seconds for every acked non-empty batch.
    latencies: list[float] = field(default_factory=list)
    error: str | None = None

    @property
    def acked_rate(self) -> float:
        """Events per second the server actually absorbed."""
        return self.acked_events / self.duration if self.duration else 0.0

    def percentile(self, p: float) -> float:
        return _percentile(sorted(self.latencies), p)

    def summary(self) -> dict:
        latencies = sorted(self.latencies)
        return {
            "offered_events": self.offered_events,
            "acked_events": self.acked_events,
            "refused_events": self.refused_events,
            "admission_refusals": self.admission_refusals,
            "lost_batches": self.lost_batches,
            "acked_rate": round(self.acked_rate, 1),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "p999_ms": round(_percentile(latencies, 0.999) * 1e3, 3),
        }


class OpenLoopEmitter:
    """One open-loop client session (see module docstring).

    ``records`` are consumed in batches of ``batch_size`` events; batch
    ``k`` is *scheduled* at ``t0 + k * batch_size / target_rate`` and
    its ack latency is measured from that scheduled instant.  The
    emitter never slows down to match the server; it is the server's
    job to shed honestly.
    """

    def __init__(self, host: str, port: int, records: list, *,
                 target_rate: float, batch_size: int = 32,
                 session: str | None = None,
                 drain_window: float = 5.0,
                 connect_retries: int = 0) -> None:
        if target_rate <= 0:
            raise ValueError("target_rate must be > 0 events/second")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.host = host
        self.port = port
        self.records = records
        self.target_rate = target_rate
        self.batch_size = batch_size
        self.session = session or f"loadgen-{id(self):x}"
        self.drain_window = drain_window
        self.connect_retries = connect_retries
        self.result = LoadResult()
        self._reader = FrameReader()
        self._lock = threading.Lock()
        self._wlock = threading.Lock()
        #: seq -> (scheduled_time, event_count); dropped when acked.
        self._outstanding: dict[int, tuple[float, int]] = {}
        #: seqs refused by a typed error, to resend empty (shed).
        self._to_resend: list[int] = []
        #: seqs whose events were shed (latency not recorded on ack).
        self._shed: set[int] = set()
        self._settled = threading.Event()
        self._dead = threading.Event()
        self._sock: socket.socket | None = None

    # -- wire helpers ----------------------------------------------------------

    def _send(self, message: dict) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("not connected")
        frame = encode_frame(message, protocol.CODEC_JSON)
        with self._wlock:
            sock.sendall(frame)

    def _connect(self) -> bool:
        for attempt in range(self.connect_retries + 1):
            try:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=5.0)
            except OSError as exc:
                self.result.error = f"connect failed: {exc}"
                return False
            sock.settimeout(0.1)
            self._sock = sock
            self._reader = FrameReader()
            try:
                self._send(protocol.hello(self.session, 0))
                first = self._await_first()
            except OSError as exc:
                sock.close()
                self._sock = None
                self.result.error = f"hello failed: {exc}"
                return False
            if first is not None and first.get("type") == "welcome":
                return True
            sock.close()
            self._sock = None
            if first is not None and first.get("code") == "overloaded":
                self.result.admission_refusals += 1
                hint = float(first.get("retry_after") or 0.1)
                if attempt < self.connect_retries:
                    time.sleep(hint)
                    continue
                self.result.error = "admission refused (overloaded)"
                return False
            self.result.error = f"unexpected first message: {first!r}"
            return False
        return False

    def _await_first(self) -> dict | None:
        deadline = time.monotonic() + 5.0
        sock = self._sock
        while time.monotonic() < deadline:
            try:
                data = sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return None
            if not data:
                return None
            for message in self._reader.feed(data):
                return message
        return None

    # -- receive side ----------------------------------------------------------

    def _receive_loop(self) -> None:
        sock = self._sock
        result = self.result
        while not self._dead.is_set():
            try:
                data = sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            now = time.monotonic()
            try:
                messages = list(self._reader.feed(data))
            except protocol.ProtocolError:
                break
            for message in messages:
                kind = message.get("type")
                if kind == "ack":
                    self._on_ack(int(message.get("seq", 0)), now)
                elif kind == "error":
                    self._on_error(message)
                elif kind == "bye":
                    self._dead.set()
        self._dead.set()
        self._settled.set()

    def _on_ack(self, seq: int, now: float) -> None:
        with self._lock:
            result = self.result
            for pending_seq in [s for s in self._outstanding if s <= seq]:
                scheduled, events = self._outstanding.pop(pending_seq)
                result.acked_batches += 1
                if pending_seq in self._shed:
                    self._shed.discard(pending_seq)
                else:
                    result.acked_events += events
                    result.latencies.append(now - scheduled)
            if not self._outstanding:
                self._settled.set()

    def _on_error(self, message: dict) -> None:
        code = message.get("code")
        seq = message.get("seq")
        with self._lock:
            if code in ("backpressure", "degraded") and seq is not None \
                    and seq in self._outstanding and seq not in self._shed:
                # Honest shed: the events are refused and counted; the
                # sequence number is resent empty to stay gap-free.
                _scheduled, events = self._outstanding[seq]
                consumed = int(message.get("consumed", 0) or 0)
                self.result.refused_batches += 1
                self.result.refused_events += max(0, events - consumed)
                self._shed.add(seq)
                self._to_resend.append(seq)
            elif code in ("draining", "bad-frame", "bad-session"):
                self.result.error = f"server error [{code}]"
                self._dead.set()

    # -- the run ---------------------------------------------------------------

    def run(self) -> LoadResult:
        result = self.result
        if not self._connect():
            self._settled.set()
            return result
        receiver = threading.Thread(target=self._receive_loop,
                                    name="loadgen-recv", daemon=True)
        receiver.start()
        records = self.records
        size = self.batch_size
        interval = size / self.target_rate
        batches = [records[i:i + size] for i in range(0, len(records), size)]
        start = time.monotonic()
        try:
            for index, events in enumerate(batches):
                if self._dead.is_set():
                    break
                scheduled = start + index * interval
                now = time.monotonic()
                if scheduled > now:
                    time.sleep(scheduled - now)
                self._drain_resends()
                seq = index + 1
                with self._lock:
                    self._outstanding[seq] = (scheduled, len(events))
                    self._settled.clear()
                result.offered_batches += 1
                result.offered_events += len(events)
                self._send(protocol.batch(self.session, seq, events))
        except OSError as exc:
            result.error = result.error or f"send failed: {exc}"
            self._dead.set()
        # Drain window: give in-flight acks (and refusal resends) a
        # bounded chance to settle, then stop counting.
        deadline = time.monotonic() + self.drain_window
        while time.monotonic() < deadline and not self._dead.is_set():
            if self._settled.wait(0.05):
                with self._lock:
                    if not self._outstanding and not self._to_resend:
                        break
            try:
                self._drain_resends()
            except OSError:
                break
        result.duration = time.monotonic() - start
        with self._lock:
            result.lost_batches = len(self._outstanding)
        try:
            self._send(protocol.bye())
        except OSError:
            pass
        self._dead.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        receiver.join(1.0)
        return result

    def _drain_resends(self) -> None:
        with self._lock:
            resend, self._to_resend = self._to_resend, []
        for seq in resend:
            self._send(protocol.batch(self.session, seq, []))


def run_emitters(emitters: list[OpenLoopEmitter]) -> list[LoadResult]:
    """Run several emitters concurrently; returns their results in
    order (each emitter's ``result`` is also populated in place)."""
    threads = [threading.Thread(target=e.run, name=f"loadgen-{i}",
                                daemon=True)
               for i, e in enumerate(emitters)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [e.result for e in emitters]
