"""ASCII rendering of figure series (log-log line charts in text).

The paper's figures are log-log line plots; the benches print tables,
and this module adds a compact visual: each series becomes a row of
column characters on a log-scaled grid, enough to eyeball the slope and
crossover structure the paper's claims are about.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_GLYPHS = "ox+*#@%&"


def render_loglog(
    title: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named series over shared x values as an ASCII log-log plot.

    Zero/negative points are dropped (log scale); series may have
    missing trailing points.
    """
    points: list[tuple[float, float, str]] = []
    glyph_of: dict[str, str] = {}
    for index, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        glyph_of[name] = glyph
        for x, y in zip(x_values, ys):
            if x > 0 and y is not None and y > 0:
                points.append((math.log10(x), math.log10(y), glyph))
    lines = [title]
    if not points:
        lines.append("(no positive data to plot)")
        return "\n".join(lines)

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = glyph

    top_label = f"{10 ** y_hi:.3g}"
    bottom_label = f"{10 ** y_lo:.3g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2:
            prefix = y_label.rjust(margin)[:margin]
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    left = f"{10 ** x_lo:.3g}"
    right = f"{10 ** x_hi:.3g}"
    axis = left + x_label.center(width - len(left) - len(right)) + right
    lines.append(" " * (margin + 1) + axis)
    legend = "  ".join(f"{glyph}={name}" for name, glyph in glyph_of.items())
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
