"""Benchmark harness: recorded-history replay, measurement, reporting."""

from repro.bench.harness import (
    SAMPLING_RATES,
    CollectorMeasurement,
    HistoryRecorder,
    RecordedRun,
    measure_collector,
    record_graph_workload,
    record_workload_from_buus,
    scale,
)
from repro.bench.figures import render_loglog
from repro.bench.overhead import run_overhead
from repro.bench.reporting import emit, format_table, results_dir
from repro.bench.threads import run_thread_scaling

__all__ = [
    "SAMPLING_RATES",
    "CollectorMeasurement",
    "HistoryRecorder",
    "RecordedRun",
    "measure_collector",
    "record_graph_workload",
    "record_workload_from_buus",
    "scale",
    "render_loglog",
    "emit",
    "format_table",
    "results_dir",
    "run_overhead",
    "run_thread_scaling",
]
