"""Shared machinery for the per-figure benchmark harness.

The sampling-quality experiments (Figs 12-23) all follow one pattern:
run a workload once on the simulator, record the *visibility-ordered
operation history*, then replay that identical history through different
collector configurations — so every configuration sees exactly the same
conflicts and differences are attributable to the collector alone, like
the paper's same-workload comparisons.

Overhead is reported the way the paper defines it: collector wall time
relative to the application's own wall time for the same operations
(``t_sr / t_0 - 1`` in §7.2), with the simulator run standing in for the
application.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core.collector import Collector
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.pruning import make_pruner
from repro.core.types import CycleCounts, Operation
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.graph_workload import GraphWorkload, GraphWorkloadConfig

#: Paper sampling rates swept in every sampling-quality figure.
SAMPLING_RATES = (1, 2, 5, 10, 20, 50, 100)


def scale(base: int, minimum: int = 1) -> int:
    """Apply the REPRO_SCALE multiplier (default 1.0) to a workload size."""
    factor = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(minimum, int(base * factor))


class HistoryRecorder:
    """Listener that captures the operation stream and BUU lifecycle."""

    def __init__(self) -> None:
        self.ops: list[Operation] = []
        self.begins: list[tuple[int, int]] = []
        self.commits: list[tuple[int, int]] = []

    def on_operation(self, op: Operation) -> None:
        self.ops.append(op)

    def begin_buu(self, buu: int, t: int) -> None:
        self.begins.append((buu, t))

    def commit_buu(self, buu: int, t: int) -> None:
        self.commits.append((buu, t))


@dataclass
class RecordedRun:
    """A workload execution: its history and the application's wall time."""

    ops: list[Operation]
    begins: list[tuple[int, int]]
    commits: list[tuple[int, int]]
    app_seconds: float
    num_items: int


def record_graph_workload(
    num_buus: int,
    num_vertices: int = 2000,
    average_degree: int = 10,
    degree_lower_bound: int = 0,
    num_workers: int = 8,
    seed: int = 0,
    write_latency: int = 0,
    compute_jitter: int = 10,
) -> RecordedRun:
    """Run the §7.2 synthetic workload once and capture its history.

    Default visibility is immediate (write_latency=0): the paper's
    §7.2-7.4 substrate is a shared-memory multicore where writes become
    visible at once and anomalies come from op interleaving alone.
    """
    workload = GraphWorkload(
        GraphWorkloadConfig(
            num_vertices=num_vertices,
            average_degree=average_degree,
            degree_lower_bound=degree_lower_bound,
            seed=seed,
        )
    )
    recorder = HistoryRecorder()
    sim = Simulator(
        SimConfig(num_workers=num_workers, seed=seed,
                  write_latency=write_latency, compute_jitter=compute_jitter),
        listeners=[recorder],
    )
    start = time.perf_counter()
    sim.run(workload.buus(num_buus))
    app_seconds = time.perf_counter() - start
    return RecordedRun(
        ops=recorder.ops,
        begins=recorder.begins,
        commits=recorder.commits,
        app_seconds=app_seconds,
        num_items=num_vertices,
    )


def record_workload_from_buus(buus, num_items: int, num_workers: int = 8,
                              seed: int = 0, write_latency: int = 0,
                              compute_jitter: int = 10,
                              store: dict | None = None) -> RecordedRun:
    """Like :func:`record_graph_workload` for an arbitrary BUU list."""
    recorder = HistoryRecorder()
    sim = Simulator(
        SimConfig(num_workers=num_workers, seed=seed,
                  write_latency=write_latency, compute_jitter=compute_jitter),
        store=store,
        listeners=[recorder],
    )
    start = time.perf_counter()
    sim.run(buus)
    app_seconds = time.perf_counter() - start
    return RecordedRun(recorder.ops, recorder.begins, recorder.commits,
                       app_seconds, num_items)


@dataclass
class CollectorMeasurement:
    """What one collector configuration produced on a recorded history."""

    label: str
    collect_seconds: float
    detect_seconds: float
    edges: int
    raw: CycleCounts
    estimated_2: float
    estimated_3: float
    edge_stats: dict[str, int] = field(default_factory=dict)

    def overhead_percent(self, app_seconds: float) -> float:
        """Collector-only overhead relative to the application."""
        return 100.0 * self.collect_seconds / max(app_seconds, 1e-9)

    def overhead_with_detection_percent(self, app_seconds: float) -> float:
        return 100.0 * (self.collect_seconds + self.detect_seconds) / max(
            app_seconds, 1e-9
        )


def measure_collector(
    collector: Collector,
    run: RecordedRun,
    label: str,
    estimator: str = "dcs",
    pruning: str = "both",
    prune_interval: int = 2000,
) -> CollectorMeasurement:
    """Replay a recorded history through a collector + detector.

    ``estimator`` selects how sampled counts are inverse-weighted:
    ``"dcs"`` uses the Theorem 5.2 label-class estimator, ``"edge"`` the
    independent-edge weights (for the ES comparison).
    """
    # Lifecycle events in time order (begins before commits on ties), so
    # the detector's alive set — and therefore pruning — behaves exactly
    # as it would live.
    events = sorted(
        [(t, 0, buu) for buu, t in run.begins]
        + [(t, 1, buu) for buu, t in run.commits]
    )

    detector = CycleDetector(pruner=make_pruner(pruning),
                             prune_interval=prune_interval)

    start = time.perf_counter()
    edges = collector.handle_all(run.ops)
    collect_seconds = time.perf_counter() - start

    start = time.perf_counter()
    event_idx = 0
    for edge in edges:
        while event_idx < len(events) and events[event_idx][0] <= edge.seq:
            t, kind, buu = events[event_idx]
            if kind == 0:
                detector.begin_buu(buu, t)
            else:
                detector.commit_buu(buu, t)
            event_idx += 1
        detector.add_edge(edge)
    detect_seconds = time.perf_counter() - start

    p = collector.sampling_probability
    if estimator == "dcs":
        est2 = estimate_two_cycles(detector.counts, p)
        est3 = estimate_three_cycles(detector.counts, p)
    elif estimator == "edge":
        from repro.core.estimator import (
            estimate_edge_sampled_three_cycles,
            estimate_edge_sampled_two_cycles,
        )

        est2 = estimate_edge_sampled_two_cycles(detector.counts, p)
        est3 = estimate_edge_sampled_three_cycles(detector.counts, p)
    else:
        raise ValueError(f"unknown estimator {estimator!r}")

    return CollectorMeasurement(
        label=label,
        collect_seconds=collect_seconds,
        detect_seconds=detect_seconds,
        edges=len(edges),
        raw=detector.counts.copy(),
        estimated_2=est2,
        estimated_3=est3,
        edge_stats=collector.stats.as_dict(),
    )
