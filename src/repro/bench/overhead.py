"""Monitoring-overhead self-measurement: the paper's ~1% claim.

Section 6 of the paper reports that RushMon's in-storage hooks slow the
monitored system by about 1% at practical sampling rates.  This harness
reproduces the *shape* of that measurement in the simulator: the same
YCSB-style read-modify-write workload is driven through
:class:`~repro.sim.scheduler.ThreadedWorkloadDriver` three ways —

- **bare** — no listeners subscribed: the cost of running the workload
  itself (store access, striped locks, thread scheduling);
- **serial** — the single-threaded :class:`~repro.core.monitor.RushMon`
  facade subscribed as the sole listener;
- **service** — the concurrent
  :class:`~repro.core.concurrent.RushMonService` (sharded collector +
  background detection thread) subscribed.

For each monitored mode it reports ``ratio = t_monitored / t_bare`` and
the derived overhead percentage.  Pure-Python hook costs are far larger
than the paper's C++-in-storage hooks, so absolute ratios here land well
above 1.01 — the claim this harness *can* check is the paper's trend:
overhead shrinks as the sampling rate grows, because a sampled-out
operation's hook is a hash + compare and nothing else.

Results go to ``benchmarks/results/overhead.txt`` via
:func:`repro.bench.reporting.emit`; ``--quick`` shrinks the workload for
CI smoke runs.
"""

from __future__ import annotations

import argparse
import random
import time
from dataclasses import replace
from typing import Sequence

from repro.bench.reporting import emit, format_table
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim.buu import Buu, read_modify_write
from repro.sim.scheduler import ThreadedWorkloadDriver


def _workload(buus: int, keys: int, touch: int, seed: int) -> list[Buu]:
    rng = random.Random(seed)
    out = []
    for _ in range(buus):
        picked = rng.sample(range(keys), min(touch, keys))
        out.append(read_modify_write([f"k{k}" for k in picked],
                                     lambda v: (v or 0) + 1))
    return out


def _timed_run(listeners, threads: int, workload: list[Buu],
               seed: int) -> float:
    driver = ThreadedWorkloadDriver(listeners, num_threads=threads, seed=seed)
    start = time.perf_counter()
    driver.run(workload)
    return time.perf_counter() - start


def run_overhead(
    buus: int = 4000,
    keys: int = 1024,
    touch: int = 3,
    threads: int = 4,
    sampling_rates: Sequence[int] = (1, 4, 20),
    repeats: int = 3,
    num_shards: int = 16,
    seed: int = 0,
    name: str = "overhead",
    batch_size: int = 256,
) -> list[dict]:
    """Measure monitored vs. unmonitored wall time; prints a table,
    writes ``benchmarks/results/<name>.txt`` and returns rows as dicts.

    Each configuration runs ``repeats`` times and keeps the minimum —
    the standard noise filter for wall-clock microbenchmarks.
    """
    workload = _workload(buus, keys, touch, seed)

    def best(make_listeners) -> float:
        return min(_timed_run(make_listeners(), threads, workload, seed)
                   for _ in range(repeats))

    t_bare = best(lambda: [])
    rows: list[dict] = [{
        "mode": "bare", "sr": "-", "seconds": t_bare,
        "ratio": 1.0, "overhead_pct": 0.0,
    }]

    for sr in sampling_rates:
        config = RushMonConfig(sampling_rate=sr, seed=seed)

        t_serial = best(lambda: [RushMon(config)])
        rows.append({
            "mode": "serial", "sr": sr, "seconds": t_serial,
            "ratio": t_serial / t_bare,
            "overhead_pct": (t_serial / t_bare - 1.0) * 100.0,
        })

        def timed_service() -> float:
            service = RushMonService(replace(config,
                                             num_shards=num_shards,
                                             detect_interval=0.01,
                                             batch_size=batch_size))
            start = time.perf_counter()
            with service:
                driver = ThreadedWorkloadDriver([service],
                                                num_threads=threads,
                                                seed=seed)
                driver.run(workload)
            return time.perf_counter() - start

        t_service = min(timed_service() for _ in range(repeats))
        rows.append({
            "mode": "service", "sr": sr, "seconds": t_service,
            "ratio": t_service / t_bare,
            "overhead_pct": (t_service / t_bare - 1.0) * 100.0,
        })

    table = format_table(
        f"Monitoring overhead: wall time vs. bare workload "
        f"({buus} BUUs x {touch} keys, {threads} threads, "
        f"min of {repeats})",
        ["mode", "sr", "seconds", "ratio", "overhead %"],
        [[r["mode"], r["sr"], r["seconds"], r["ratio"], r["overhead_pct"]]
         for r in rows],
    )
    emit(name, table)
    return rows


def main(argv: Sequence[str] | None = None) -> list[dict]:
    """CLI entry point: parse flags, run the harness, return its rows."""
    parser = argparse.ArgumentParser(
        description="Measure monitoring overhead (monitored vs. bare)."
    )
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--buus", type=int, default=None)
    parser.add_argument("--keys", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--rates", type=int, nargs="+", default=None,
                        help="sampling rates to measure")
    args = parser.parse_args(argv)

    if args.quick:
        defaults = dict(buus=300, keys=128, threads=2,
                        sampling_rates=(1, 20), repeats=1)
    else:
        defaults = dict(buus=4000, keys=1024, threads=4,
                        sampling_rates=(1, 4, 20), repeats=3)
    if args.buus is not None:
        defaults["buus"] = args.buus
    if args.keys is not None:
        defaults["keys"] = args.keys
    if args.threads is not None:
        defaults["threads"] = args.threads
    if args.repeats is not None:
        defaults["repeats"] = args.repeats
    if args.rates is not None:
        defaults["sampling_rates"] = tuple(args.rates)
    return run_overhead(**defaults)


if __name__ == "__main__":
    main()
