"""Perf-regression harness: pinned-seed ingest benchmarks (``BENCH_ingest.json``).

Three benches, all driven by the same deterministic event generator:

- **collector+detector** — single-threaded ingest of a mixed
  operation/lifecycle stream through ``DataCentricCollector`` and
  ``CycleDetector`` (sr=1 exercises the full bookkeeping path, sr=20 the
  sampled path).  The stream is pre-chunked into operation batches — the
  shape a batched caller such as ``RushMonService.on_operations``
  delivers — and fed through ``handle_batch`` / ``add_edge_batch``.
- **detector edge storm** — the detector alone, fed pre-collected edges
  in batches (isolates cycle counting + pruning from collection).
- **columnar** (numpy only) — the same combined stream through the
  vectorized :mod:`repro.core.columnar` kernel
  (``collector_detector_sr1_columnar``), plus the collection kernel in
  isolation (``columnar_collect_sr1``) since the pure-python detector's
  per-edge graph work bounds every combined row identically.
- **net ingest** — server-side wire decode + sr=1 ingest of pre-encoded
  frames, codec 0 (JSON) vs codec 2 (packed columns): the
  representation claim measured where it pays, at the wire boundary.
- **service end-to-end** — 8 threads feed ``RushMonService`` in
  1024-operation chunks while a closer thread snapshots windows;
  reports ops/sec plus p50/p99 window-close (detection pass) latency.
- **cluster end-to-end** — the identical 8-thread workload against a
  4-worker :class:`~repro.cluster.ClusterMonitor`: collection is
  partitioned across worker *processes* (sidestepping the GIL the
  service's producer threads share), so the committed
  ``cluster_workers4`` row is the multi-process scaling claim, measured
  in the same run as ``service_8threads``.

Results go to ``BENCH_ingest.json`` at the repo root.  The committed
file records both the **pre-change** numbers (measured at the per-op
ingest commit, on the same machine and workload, protocol below) and
the **post-change** numbers, so the speedup claims are auditable.

CI check mode
-------------
Absolute ops/sec are machine-dependent, so ``--check`` compares the
machine-*independent* batch-vs-per-op speedup ratios: the quick suite
measures both protocols back-to-back on the same host and fails if the
measured ratio fell more than ``--tolerance`` (default 0.30, i.e. 30%)
below the committed one.  Raise the tolerance if a hosted runner proves
noisier than that; lower it to tighten the gate on quiet hardware.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.core.columnar import HAVE_NUMPY, OpBatch
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.pruning import make_pruner
from repro.core.types import Edge, KeyInterner, Operation, OpType
from repro.net import protocol

#: Committed results file, at the repo root.
RESULTS_FILE = "BENCH_ingest.json"

#: Default operation batch size for the batched protocol (matches the
#: service default).
DEFAULT_BATCH_SIZE = 2048

#: Throughput measured immediately before the batched fast path landed,
#: with the then-current per-operation ingest protocol (``handle`` /
#: ``add_edge`` per event) on the identical workload, seeds, and
#: machine as the committed post-change numbers.  Latencies in seconds.
PRE_CHANGE = {
    "collector_detector_sr1": 118738.5,
    "collector_detector_sr20": 670996.9,
    "detector_edge_storm": 229093.5,
    "detector_edges": 184222,
    "service_8threads": 49613.9,
    "service_pass_p50": 2.8249,
    "service_pass_p99": 2.8249,
}


def synth_events(num_ops: int, num_keys: int = 1024, active: int = 32,
                 ops_per_buu: int = 8, write_frac: float = 0.5,
                 skew: float = 2.0, seed: int = 0) -> list:
    """Pinned-seed event stream mixing lifecycle tuples and operations.

    Yields ``("b", buu, seq)`` / ``("c", buu, seq)`` lifecycle markers
    interleaved with :class:`Operation` events: ``active`` BUUs run
    concurrently, each touching ``ops_per_buu`` skewed-random keys, and
    every commit immediately begins a replacement BUU.
    """
    rng = random.Random(seed)
    events: list = []
    next_buu = 0
    live: list[int] = []
    remaining: dict[int, int] = {}
    seq = 0

    def begin() -> None:
        nonlocal next_buu, seq
        buu = next_buu
        next_buu += 1
        seq += 1
        events.append(("b", buu, seq))
        live.append(buu)
        remaining[buu] = ops_per_buu

    for _ in range(active):
        begin()
    emitted = 0
    while emitted < num_ops:
        buu = live[rng.randrange(len(live))]
        key = f"k{int(num_keys * (rng.random() ** skew))}"
        kind = OpType.WRITE if rng.random() < write_frac else OpType.READ
        seq += 1
        events.append(Operation(kind, buu, key, seq))
        emitted += 1
        remaining[buu] -= 1
        if remaining[buu] == 0:
            live.remove(buu)
            del remaining[buu]
            seq += 1
            events.append(("c", buu, seq))
            begin()
    for buu in live:
        seq += 1
        events.append(("c", buu, seq))
    return events


def _chunk_plan(events: Sequence, batch_size: int) -> list:
    """Group operations into batches of up to ``batch_size``, leaving
    lifecycle tuples inline.

    Operations accumulate *across* lifecycle boundaries: lifecycle
    events apply to the detector immediately while buffered operations
    flush later, which is count-preserving because no pruner acts at
    commit time and pruning at the flush point sees the complete graph.
    """
    plan: list = []
    buf: list = []
    for ev in events:
        if ev.__class__ is Operation:
            buf.append(ev)
            if len(buf) >= batch_size:
                plan.append(buf)
                buf = []
        else:
            plan.append(ev)
    if buf:
        plan.append(buf)
    return plan


def _columnar_plan(events: Sequence, batch_size: int) -> list:
    """The :func:`_chunk_plan` with every operation batch pre-interned
    into an :class:`OpBatch` (one shared interner across the stream).

    The conversion is untimed by design, mirroring how the columnar
    path is fed in production: operations arrive as packed codec-2
    columns (or are interned once at the workload boundary), not as
    per-op objects converted inside the ingest hot path.
    """
    interner = KeyInterner()
    return [OpBatch.from_ops(item, interner) if item.__class__ is list
            else item for item in _chunk_plan(events, batch_size)]


def bench_collector_detector(events: Sequence, sr: int,
                             batch_size: int = DEFAULT_BATCH_SIZE,
                             repeats: int = 3, batched: bool = True,
                             columnar: bool = False) -> float:
    """Single-thread collector+detector ingest throughput (ops/sec).

    ``batched=False`` runs the per-operation protocol (``handle`` +
    ``add_edge`` per event) used for the pre-change baseline and for
    the machine-independent speedup ratio in check mode.
    ``columnar=True`` feeds pre-built :class:`OpBatch` batches through
    the vectorized kernel (bit-identical edges/counters to the batched
    per-op protocol; see ``tests/test_columnar.py``).
    """
    n_ops = sum(1 for e in events if e.__class__ is Operation)
    if columnar:
        cplan = _columnar_plan(events, batch_size)
        best = None
        for _ in range(repeats):
            col = DataCentricCollector(sampling_rate=sr, mob=True, seed=0)
            det = CycleDetector(pruner=make_pruner("both"),
                                prune_interval=1000)
            handle_batch = col.handle_batch
            add_edge_batch = det.add_edge_batch
            t0 = time.perf_counter()
            for item in cplan:
                if item.__class__ is not tuple:
                    add_edge_batch(handle_batch(item))
                elif item[0] == "b":
                    det.begin_buu(item[1], item[2])
                else:
                    det.commit_buu(item[1], item[2])
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        assert best is not None
        return n_ops / best
    plan = _chunk_plan(events, batch_size) if batched else None
    best = None
    for _ in range(repeats):
        col = DataCentricCollector(sampling_rate=sr, mob=True, seed=0)
        det = CycleDetector(pruner=make_pruner("both"), prune_interval=1000)
        if batched:
            assert plan is not None
            handle_batch = col.handle_batch
            add_edge_batch = det.add_edge_batch
            t0 = time.perf_counter()
            for item in plan:
                if item.__class__ is list:
                    add_edge_batch(handle_batch(item))
                elif item[0] == "b":
                    det.begin_buu(item[1], item[2])
                else:
                    det.commit_buu(item[1], item[2])
            dt = time.perf_counter() - t0
        else:
            handle = col.handle
            add_edge = det.add_edge
            t0 = time.perf_counter()
            for ev in events:
                if ev.__class__ is Operation:
                    for edge in handle(ev):
                        add_edge(edge)
                elif ev[0] == "b":
                    det.begin_buu(ev[1], ev[2])
                else:
                    det.commit_buu(ev[1], ev[2])
            dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    assert best is not None
    return n_ops / best


def bench_detector_storm(events: Sequence,
                         batch_size: int = DEFAULT_BATCH_SIZE,
                         repeats: int = 3,
                         batched: bool = True) -> tuple[float, int]:
    """Detector-only edge ingest throughput (edges/sec, edge count).

    Edges are pre-collected (untimed) through the exact baseline
    collector, so the timed region isolates cycle counting + pruning.
    """
    col = BaselineCollector()
    storm: list = []
    for ev in events:
        if ev.__class__ is Operation:
            storm.extend(col.handle(ev))
        else:
            storm.append(ev)
    n_edges = sum(1 for s in storm if s.__class__ is Edge)

    plan: list = []
    buf: list = []
    for item in storm:
        if item.__class__ is Edge:
            buf.append(item)
            if len(buf) >= batch_size:
                plan.append(buf)
                buf = []
        else:
            plan.append(item)
    if buf:
        plan.append(buf)

    best = None
    for _ in range(repeats):
        det = CycleDetector(pruner=make_pruner("both"), prune_interval=1000)
        if batched:
            add_edge_batch = det.add_edge_batch
            t0 = time.perf_counter()
            for item in plan:
                if item.__class__ is list:
                    add_edge_batch(item)
                elif item[0] == "b":
                    det.begin_buu(item[1], item[2])
                else:
                    det.commit_buu(item[1], item[2])
            dt = time.perf_counter() - t0
        else:
            add_edge = det.add_edge
            t0 = time.perf_counter()
            for item in storm:
                if item.__class__ is Edge:
                    add_edge(item)
                elif item[0] == "b":
                    det.begin_buu(item[1], item[2])
                else:
                    det.commit_buu(item[1], item[2])
            dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    assert best is not None
    return n_edges / best, n_edges


def bench_collector_columnar(events: Sequence, sr: int,
                             batch_size: int = DEFAULT_BATCH_SIZE,
                             repeats: int = 3) -> float:
    """Columnar collection-kernel throughput (ops/sec): DCS sampling +
    per-key grouping + edge derivation over pre-built :class:`OpBatch`
    columns, without the (pure-python) cycle detector downstream.

    This is the representation-change claim in isolation — the combined
    ``collector_detector`` rows are capped by the detector's per-edge
    graph work, which is shared by every ingest protocol.
    """
    n_ops = sum(1 for e in events if e.__class__ is Operation)
    cplan = [item for item in _columnar_plan(events, batch_size)
             if item.__class__ is not tuple]
    best = None
    for _ in range(repeats):
        col = DataCentricCollector(sampling_rate=sr, mob=True, seed=0)
        handle_batch = col.handle_batch
        t0 = time.perf_counter()
        for item in cplan:
            handle_batch(item)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    assert best is not None
    return n_ops / best


def bench_net_ingest(events: Sequence, codec: int, sr: int = 20,
                     batch_size: int = DEFAULT_BATCH_SIZE,
                     repeats: int = 3) -> tuple[float, object]:
    """Server-side decode+ingest throughput (ops/sec) for one codec.

    Frames are pre-encoded (untimed — that is the client's cost); the
    timed region is what an ingestion server does per connection:
    :class:`~repro.net.protocol.FrameReader` framing + CRC, event
    materialization, and collector+detector ingest at ``sr`` (default
    20, the deployed sampling configuration — there decode is the
    dominant server cost, exactly what the codec choice changes; the
    ``collector_detector_sr1*`` rows cover full-bookkeeping ingest).
    Both codecs apply the same frame discipline — each frame's
    operations ingest as one batch, then its lifecycle rows apply in
    order — so the derived graphs (returned as the detector's final
    cycle counts) are identical across codecs and the ratio isolates
    decode + materialization cost.
    """
    frames: list[bytes] = []
    buf: list = []
    seqno = 0
    n_ops = 0

    def flush() -> None:
        nonlocal seqno, buf
        if buf:
            seqno += 1
            frames.append(protocol.encode_frame(
                protocol.batch("bench", seqno, buf), codec))
            buf = []

    for ev in events:
        if ev.__class__ is Operation:
            buf.append(protocol.wire_op(ev))
            n_ops += 1
        elif ev[0] == "b":
            buf.append(protocol.wire_begin(ev[1], ev[2]))
        else:
            buf.append(protocol.wire_commit(ev[1], ev[2]))
        if len(buf) >= batch_size:
            flush()
    flush()
    blob = b"".join(frames)

    best = None
    counts = None
    for _ in range(repeats):
        col = DataCentricCollector(sampling_rate=sr, mob=True, seed=0)
        det = CycleDetector(pruner=make_pruner("both"), prune_interval=1000)
        interner = KeyInterner()
        reader = protocol.FrameReader()
        handle_batch = col.handle_batch
        add_edge_batch = det.add_edge_batch
        t0 = time.perf_counter()
        for offset in range(0, len(blob), 65536):  # socket-sized chunks
            for message in reader.feed(blob[offset:offset + 65536]):
                records = message["events"]
                if isinstance(records, protocol.ColumnarEvents):
                    batch, lifecycle = OpBatch.from_wire(records, interner)
                    if len(batch):
                        add_edge_batch(handle_batch(batch))
                    for kind, buu, when in lifecycle:
                        if kind == "b":
                            det.begin_buu(buu, when)
                        else:
                            det.commit_buu(buu, when)
                else:
                    ops: list = []
                    lifecycle = []
                    for record in records:
                        kind = record[0]
                        if kind == "r" or kind == "w":
                            ops.append(Operation(OpType(kind), record[1],
                                                 record[2], record[3]))
                        else:
                            lifecycle.append(record)
                    if ops:
                        add_edge_batch(handle_batch(ops))
                    for record in lifecycle:
                        if record[0] == "b":
                            det.begin_buu(record[1], record[2])
                        else:
                            det.commit_buu(record[1], record[2])
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
        counts = det.counts
    assert best is not None
    return n_ops / best, counts


def bench_service(num_threads: int = 8, ops_per_thread: int = 40000,
                  num_keys: int = 4096, sr: int = 4, shards: int = 16,
                  seed: int = 0,
                  batch_size: int = DEFAULT_BATCH_SIZE
                  ) -> tuple[float, float, float]:
    """End-to-end service throughput: N threads feed pre-generated
    streams in 1024-op chunks while a closer thread snapshots windows.

    Returns (ops/sec, p50 close latency, p99 close latency) in seconds.
    """
    streams = []
    for t in range(num_threads):
        evs = synth_events(ops_per_thread, num_keys=num_keys, active=16,
                           ops_per_buu=64, seed=seed + 1000 * t + 1)
        streams.append(evs)
    service = RushMonService(
        RushMonConfig(sampling_rate=sr, mob=True, seed=seed,
                      num_shards=shards, detect_interval=3600.0,
                      batch_size=batch_size),
    )
    total_ops = sum(
        sum(1 for e in s if e.__class__ is Operation) for s in streams
    )

    def feed(stream: list) -> None:
        buf: list = []
        for ev in stream:
            if ev.__class__ is Operation:
                buf.append(ev)
                if len(buf) >= 1024:
                    service.on_operations(buf)
                    buf.clear()
            elif ev[0] == "b":
                service.begin_buu(ev[1], ev[2])
            else:
                service.commit_buu(ev[1], ev[2])
        if buf:
            service.on_operations(buf)

    threads = [threading.Thread(target=feed, args=(s,)) for s in streams]
    done = threading.Event()
    pass_lat: list[float] = []

    def closer() -> None:
        while not done.is_set():
            time.sleep(0.05)
            t0 = time.perf_counter()
            service.close_window()
            pass_lat.append(time.perf_counter() - t0)

    t0 = time.perf_counter()
    close_thread = threading.Thread(target=closer)
    close_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    done.set()
    close_thread.join()
    service.stop()
    dt = time.perf_counter() - t0
    lat = sorted(pass_lat)
    p50 = lat[len(lat) // 2] if lat else 0.0
    p99 = lat[min(len(lat) - 1, int(len(lat) * 0.99))] if lat else 0.0
    return total_ops / dt, p50, p99


def bench_cluster(num_threads: int = 8, ops_per_thread: int = 40000,
                  num_keys: int = 4096, sr: int = 4, workers: int = 4,
                  seed: int = 0, cluster_batch: int = 1024,
                  kill_respawn: bool = False
                  ) -> tuple[float, float, float]:
    """End-to-end cluster throughput: the same 8-thread workload as
    :func:`bench_service`, fed to a ``workers``-process
    :class:`~repro.cluster.ClusterMonitor` while a closer thread
    snapshots cluster-wide windows.

    With ``kill_respawn`` a worker is SIGKILLed mid-stream, so the
    measured number includes one supervisor respawn-and-replay — the
    smoke check that the recovery path survives a real workload (the
    run must still finish with ``health="ok"``).

    Returns (ops/sec, p50 close latency, p99 close latency) in seconds.
    """
    import os
    import signal as _signal

    from repro.cluster import ClusterMonitor

    streams = []
    for t in range(num_threads):
        evs = synth_events(ops_per_thread, num_keys=num_keys, active=16,
                           ops_per_buu=64, seed=seed + 1000 * t + 1)
        streams.append(evs)
    cluster = ClusterMonitor(
        RushMonConfig(sampling_rate=sr, mob=True, seed=seed,
                      num_workers=workers, cluster_batch=cluster_batch),
    )
    total_ops = sum(
        sum(1 for e in s if e.__class__ is Operation) for s in streams
    )

    def feed(stream: list) -> None:
        buf: list = []
        for ev in stream:
            if ev.__class__ is Operation:
                buf.append(ev)
                if len(buf) >= 1024:
                    cluster.on_operations(buf)
                    buf.clear()
            elif ev[0] == "b":
                cluster.begin_buu(ev[1], ev[2])
            else:
                cluster.commit_buu(ev[1], ev[2])
        if buf:
            cluster.on_operations(buf)

    # Spawn + mesh handshake happens outside the timed region: the
    # bench measures steady-state routing, not process startup.
    cluster.begin_buu(-1, 0)
    cluster.commit_buu(-1, 0)
    cluster.close_window()

    threads = [threading.Thread(target=feed, args=(s,)) for s in streams]
    done = threading.Event()
    pass_lat: list[float] = []

    def closer() -> None:
        while not done.is_set():
            time.sleep(0.05)
            t0 = time.perf_counter()
            cluster.close_window()
            pass_lat.append(time.perf_counter() - t0)

    t0 = time.perf_counter()
    close_thread = threading.Thread(target=closer)
    close_thread.start()
    for t in threads:
        t.start()
    if kill_respawn:
        time.sleep(0.2)
        victim = cluster._links[0].proc
        if victim is not None and victim.is_alive():
            os.kill(victim.pid, _signal.SIGKILL)
    for t in threads:
        t.join()
    done.set()
    close_thread.join()
    final = cluster.close_window()
    if kill_respawn and final.health != "ok":
        raise RuntimeError(
            f"kill-respawn bench ended degraded: {final.degraded_shards}")
    cluster.stop()
    dt = time.perf_counter() - t0
    lat = sorted(pass_lat)
    p50 = lat[len(lat) // 2] if lat else 0.0
    p99 = lat[min(len(lat) - 1, int(len(lat) * 0.99))] if lat else 0.0
    return total_ops / dt, p50, p99


def run_full(batch_size: int = DEFAULT_BATCH_SIZE,
             repeats: int = 3, seed: int = 0) -> dict:
    """The committed suite: 150k-op stream + the 8-thread service run."""
    events = synth_events(150_000, seed=seed)
    results: dict = {}
    results["collector_detector_sr1"] = bench_collector_detector(
        events, 1, batch_size, repeats)
    results["collector_detector_sr20"] = bench_collector_detector(
        events, 20, batch_size, repeats)
    storm, n_edges = bench_detector_storm(events, batch_size, repeats)
    results["detector_edge_storm"] = storm
    results["detector_edges"] = n_edges
    if HAVE_NUMPY:
        results["collector_detector_sr1_columnar"] = bench_collector_detector(
            events, 1, batch_size, repeats, columnar=True)
        results["columnar_collect_sr1"] = bench_collector_columnar(
            events, 1, batch_size, repeats)
    net0, counts0 = bench_net_ingest(events, protocol.CODEC_JSON,
                                     batch_size=batch_size, repeats=repeats)
    net2, counts2 = bench_net_ingest(events, protocol.CODEC_COLUMNAR,
                                     batch_size=batch_size, repeats=repeats)
    if counts0 != counts2:
        raise RuntimeError(
            f"net_ingest codecs diverged: codec-0 counted {counts0}, "
            f"codec-2 counted {counts2}")
    results["net_ingest_codec0"] = net0
    results["net_ingest_codec2"] = net2
    results["net_ingest_speedup"] = net2 / net0
    svc, p50, p99 = bench_service(seed=seed, batch_size=batch_size)
    results["service_8threads"] = svc
    results["service_pass_p50"] = p50
    results["service_pass_p99"] = p99
    clu, cp50, cp99 = bench_cluster(seed=seed)
    results["cluster_workers4"] = clu
    results["cluster_pass_p50"] = cp50
    results["cluster_pass_p99"] = cp99
    return results


def run_quick(batch_size: int = DEFAULT_BATCH_SIZE,
              repeats: int = 3, seed: int = 0) -> dict:
    """CI suite: small stream, both protocols, machine-portable ratios."""
    events = synth_events(30_000, seed=seed)
    batched_sr1 = bench_collector_detector(events, 1, batch_size, repeats)
    perop_sr1 = bench_collector_detector(events, 1, batch_size, repeats,
                                         batched=False)
    storm_batched, _ = bench_detector_storm(events, batch_size, repeats)
    storm_perop, _ = bench_detector_storm(events, batch_size, repeats,
                                          batched=False)
    results = {
        "collector_detector_sr1_batched": batched_sr1,
        "collector_detector_sr1_perop": perop_sr1,
        "batch_speedup_sr1": batched_sr1 / perop_sr1,
        "detector_storm_batched": storm_batched,
        "detector_storm_perop": storm_perop,
        "batch_speedup_storm": storm_batched / storm_perop,
    }
    net0, counts0 = bench_net_ingest(events, protocol.CODEC_JSON,
                                     batch_size=batch_size, repeats=repeats)
    net2, counts2 = bench_net_ingest(events, protocol.CODEC_COLUMNAR,
                                     batch_size=batch_size, repeats=repeats)
    if counts0 != counts2:
        raise RuntimeError(
            f"net_ingest codecs diverged: codec-0 counted {counts0}, "
            f"codec-2 counted {counts2}")
    results["net_ingest_codec0"] = net0
    results["net_ingest_codec2"] = net2
    results["net_ingest_speedup"] = net2 / net0
    if HAVE_NUMPY:
        columnar_sr1 = bench_collector_detector(events, 1, batch_size,
                                                repeats, columnar=True)
        kernel_sr1 = bench_collector_columnar(events, 1, batch_size, repeats)
        results["collector_detector_sr1_columnar"] = columnar_sr1
        results["columnar_collect_sr1"] = kernel_sr1
        results["columnar_vs_batched_sr1"] = columnar_sr1 / batched_sr1
    return results


def _speedups(full: dict) -> dict:
    pre = PRE_CHANGE
    return {
        "collector_detector_sr1":
            full["collector_detector_sr1"] / pre["collector_detector_sr1"],
        "collector_detector_sr20":
            full["collector_detector_sr20"] / pre["collector_detector_sr20"],
        "detector_edge_storm":
            full["detector_edge_storm"] / pre["detector_edge_storm"],
        "service_8threads":
            full["service_8threads"] / pre["service_8threads"],
    }


def _print_table(full: dict, speedups: dict) -> None:
    print(f"{'bench':<28}{'pre (ops/s)':>14}{'now (ops/s)':>14}{'speedup':>9}")
    for key, ratio in speedups.items():
        print(f"{key:<28}{PRE_CHANGE[key]:>14,.0f}{full[key]:>14,.0f}"
              f"{ratio:>8.2f}x")
    if "collector_detector_sr1_columnar" in full:
        ratio = (full["collector_detector_sr1_columnar"]
                 / full["collector_detector_sr1"])
        print(f"{'collector_detector_sr1_columnar':<28}{'--':>14}"
              f"{full['collector_detector_sr1_columnar']:>14,.0f}"
              f"{ratio:>8.2f}x  (vs same-run batched per-op)")
        print(f"{'columnar_collect_sr1':<28}{'--':>14}"
              f"{full['columnar_collect_sr1']:>14,.0f}"
              f"{'':>9}  (collection kernel, no detector)")
    if "net_ingest_codec2" in full:
        print(f"{'net_ingest codec-0':<28}{'--':>14}"
              f"{full['net_ingest_codec0']:>14,.0f}")
        print(f"{'net_ingest codec-2':<28}{'--':>14}"
              f"{full['net_ingest_codec2']:>14,.0f}"
              f"{full['net_ingest_speedup']:>8.2f}x  (decode+ingest vs "
              f"codec-0)")
    print(f"service close latency: p50 {full['service_pass_p50'] * 1e3:.1f}ms"
          f"  p99 {full['service_pass_p99'] * 1e3:.1f}ms"
          f"  (pre p50 {PRE_CHANGE['service_pass_p50'] * 1e3:.1f}ms)")
    if "cluster_workers4" in full:
        # No PRE_CHANGE row exists for the cluster (it is new); the
        # scaling claim is measured against the same-run service number.
        scale = full["cluster_workers4"] / full["service_8threads"]
        print(f"{'cluster_workers4':<28}{'--':>14}"
              f"{full['cluster_workers4']:>14,.0f}{scale:>8.2f}x"
              f"  (vs same-run service_8threads)")
        print(f"cluster close latency: p50 {full['cluster_pass_p50'] * 1e3:.1f}"
              f"ms  p99 {full['cluster_pass_p99'] * 1e3:.1f}ms")
        if (os.cpu_count() or 1) < 4:
            print("  note: this host has fewer cores than workers — no "
                  "process parallelism; see protocol.cluster_note in "
                  f"{RESULTS_FILE}")


def check_quick(committed: dict, measured: dict, tolerance: float) -> list[str]:
    """Compare measured quick-suite speedup ratios against the committed
    ones; returns a list of human-readable failures (empty = pass)."""
    failures = []
    quick = committed.get("quick", {})
    gated = ["batch_speedup_sr1", "batch_speedup_storm"]
    # The columnar rows (and codec-2's decode advantage, which lives in
    # numpy frombuffer) only hold where numpy does — a fallback-mode
    # host measures the pure-python struct path, so the committed
    # ratios would gate the wrong thing there.
    if "columnar_vs_batched_sr1" in measured:
        gated += ["net_ingest_speedup", "columnar_vs_batched_sr1"]
    for key in gated:
        baseline = quick.get(key)
        if baseline is None:
            failures.append(f"committed {RESULTS_FILE} has no quick.{key}; "
                            f"re-run with --update to regenerate it")
            continue
        floor = baseline * (1.0 - tolerance)
        if measured[key] < floor:
            failures.append(
                f"{key} regressed: measured {measured[key]:.2f}x < floor "
                f"{floor:.2f}x (committed {baseline:.2f}x minus "
                f"{tolerance:.0%} tolerance)")
    return failures


def run_regress(out_path: str | Path = RESULTS_FILE, *, quick: bool = False,
                update: bool = False, check: bool = False,
                tolerance: float = 0.30,
                batch_size: int = DEFAULT_BATCH_SIZE,
                repeats: int = 3, seed: int = 0) -> int:
    """Entry point behind ``python -m repro bench-regress``.

    Default: run the suite and print results.  ``--update`` also rewrites
    ``BENCH_ingest.json``; ``--check`` compares the quick suite's
    batch-vs-per-op ratios against the committed file and returns 1 on a
    regression beyond ``tolerance``.
    """
    out_path = Path(out_path)
    quick_results = run_quick(batch_size, repeats, seed)
    print("quick suite (30k ops):")
    print(f"  sr=1 batched {quick_results['collector_detector_sr1_batched']:,.0f}"
          f" vs per-op {quick_results['collector_detector_sr1_perop']:,.0f}"
          f" ops/s -> {quick_results['batch_speedup_sr1']:.2f}x")
    print(f"  storm batched {quick_results['detector_storm_batched']:,.0f}"
          f" vs per-op {quick_results['detector_storm_perop']:,.0f}"
          f" edges/s -> {quick_results['batch_speedup_storm']:.2f}x")
    print(f"  net ingest codec-2 {quick_results['net_ingest_codec2']:,.0f}"
          f" vs codec-0 {quick_results['net_ingest_codec0']:,.0f}"
          f" ops/s -> {quick_results['net_ingest_speedup']:.2f}x")
    if "columnar_vs_batched_sr1" in quick_results:
        print(f"  sr=1 columnar {quick_results['collector_detector_sr1_columnar']:,.0f}"
              f" ops/s ({quick_results['columnar_vs_batched_sr1']:.2f}x "
              f"batched); kernel {quick_results['columnar_collect_sr1']:,.0f}"
              f" ops/s")

    if check:
        if not out_path.exists():
            print(f"check failed: {out_path} not found — run with --update "
                  f"first to commit a baseline")
            return 1
        committed = json.loads(out_path.read_text())
        failures = check_quick(committed, quick_results, tolerance)
        if failures:
            for failure in failures:
                print(f"check failed: {failure}")
            return 1
        print(f"check passed (tolerance {tolerance:.0%})")
        if quick:
            return 0

    full_results: dict = {}
    if not quick:
        full_results = run_full(batch_size, repeats, seed)
        speedups = _speedups(full_results)
        print()
        _print_table(full_results, speedups)

    if update:
        if quick and out_path.exists():
            payload = json.loads(out_path.read_text())
        else:
            payload = {}
        payload.setdefault("protocol", {
            "workload": "synth_events(150_000, seed=0); quick=30k ops",
            "batch_size": batch_size,
            "repeats": repeats,
            "service": "8 threads x 40k ops, keys=4096, sr=4, shards=16, "
                       "1024-op chunks, closer @50ms, detect_interval=3600",
            "note": "pre = per-op protocol at the pre-change commit, same "
                    "machine/workload; quick ratios are what CI checks",
        })
        # The cluster row is new: (re)write its protocol note even when a
        # committed protocol block already exists.
        payload["protocol"]["cluster"] = (
            "same 8-thread workload, ClusterMonitor with 4 worker "
            "processes, cluster_batch=1024, closer @50ms; compared "
            "against the same-run service_8threads"
        )
        payload["protocol"]["cluster_cpus"] = os.cpu_count()
        payload["protocol"]["columnar"] = (
            "collector_detector_sr1_columnar = the combined row with "
            "OpBatch batches pre-built (untimed) and fed through the "
            "vectorized kernel + the EdgeBatch detector feed; "
            "columnar_collect_sr1 = the collection kernel alone "
            "(sampling, grouping, edge derivation) without the "
            "pure-python cycle detector, which bounds every combined "
            "row at its ~2us/edge graph work and is shared by all "
            "ingest protocols; numpy required (skipped otherwise)"
        )
        payload["protocol"]["net_ingest"] = (
            "server-side decode+ingest: pre-encoded 2048-event frames "
            "fed through FrameReader in 64KiB chunks, each frame's ops "
            "ingested as one sr=20 collector+detector batch (the "
            "deployed sampling configuration, where decode is the "
            "dominant server cost) and its "
            "lifecycle rows applied after; identical frame discipline "
            "for both codecs (final cycle counts asserted equal), so "
            "the ratio isolates decode + event materialization"
        )
        payload["protocol"]["cluster_note"] = (
            "every worker redundantly maintains the full conflict graph "
            "(that is what makes per-shard counts sum bit-exactly), so "
            "the cluster only out-scales the single-process service when "
            "the host grants it >= num_workers cores; on a single-core "
            "host it is strictly more total CPU work and the row "
            "documents that honestly rather than a scaling win"
        )
        payload["pre"] = PRE_CHANGE
        if full_results:
            payload["full"] = full_results
            payload["speedup_vs_pre"] = _speedups(full_results)
        payload["quick"] = quick_results
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out_path}")
    return 0
