"""The Section 7.2 synthetic workload.

"The workload iteratively executes BUUs on a graph: each BUU reads one
vertex and its neighbors, performs arithmetic operations on them, and
writes some values back to them."  The graph comes from the Table 1
preferential-attachment generator (parameters V, D, LB); the number of
workers C is a simulator parameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.random_graphs import UndirectedGraph, preferential_attachment_graph
from repro.sim.buu import Buu


@dataclass
class GraphWorkloadConfig:
    """Table 1 parameters (scaled; the paper's defaults in comments).

    ``num_vertices`` — paper default 10e6, scaled to simulator size.
    ``average_degree`` — paper default 10.
    ``degree_lower_bound`` — paper default 0.
    ``neighbor_cap`` — cap on neighbours a BUU touches, keeping BUU size
    bounded on heavy-tailed graphs (the paper assumes ~10 ops per BUU).
    ``write_back`` — how many of the read vertices are written back;
    ``None`` (the default) writes back everything that was read, the
    §5.2 "write to the exact same location that has just been read"
    pattern that keeps reads-between-writes small and MOB nearly
    lossless.
    """

    num_vertices: int = 2000
    average_degree: int = 10
    degree_lower_bound: int = 0
    neighbor_cap: int = 8
    write_back: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ValueError("num_vertices must be >= 2")
        if self.neighbor_cap < 1:
            raise ValueError("neighbor_cap must be >= 1")
        if self.write_back is not None and self.write_back < 1:
            raise ValueError("write_back must be >= 1 or None")


class GraphWorkload:
    """BUU factory over a preferential-attachment graph.

    :meth:`buus` yields an endless stream of BUUs, each visiting a random
    vertex: read the vertex and (up to ``neighbor_cap``) neighbours, do
    arithmetic, write back to the vertex and a sample of the read
    neighbours.  Keys are vertex ids.
    """

    def __init__(self, config: GraphWorkloadConfig | None = None,
                 graph: UndirectedGraph | None = None) -> None:
        self.config = config or GraphWorkloadConfig()
        self._rng = random.Random(self.config.seed)
        if graph is not None:
            self.graph = graph
        else:
            self.graph = preferential_attachment_graph(
                self.config.num_vertices,
                self.config.average_degree,
                self.config.degree_lower_bound,
                random.Random(self.config.seed + 1),
            )

    @property
    def items(self) -> range:
        """The key universe (for the monitor's materialized sampler)."""
        return range(self.graph.num_vertices)

    def make_buu(self) -> Buu:
        rng = self._rng
        vertex = rng.randrange(self.graph.num_vertices)
        neighbors = list(self.graph.neighbors(vertex))
        if len(neighbors) > self.config.neighbor_cap:
            neighbors = rng.sample(neighbors, self.config.neighbor_cap)
        reads = [vertex] + neighbors
        if self.config.write_back is None:
            targets = list(reads)
        else:
            write_count = min(self.config.write_back, len(reads))
            extra = rng.sample(neighbors, write_count - 1) if write_count > 1 else []
            targets = [vertex] + extra

        def compute(values: dict) -> dict:
            total = sum((values.get(k) or 0.0) for k in reads)
            mean = total / len(reads)
            return {k: mean + 1.0 for k in targets}

        return Buu(reads=reads, compute=compute)

    def buus(self, count: int) -> Iterator[Buu]:
        for _ in range(count):
            yield self.make_buu()
