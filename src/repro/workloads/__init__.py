"""Workloads: the §7.2 synthetic workload, bookstore, dataset stand-ins."""

from repro.workloads.bookstore import Bookstore, BookstoreConfig, ViolationCounter
from repro.workloads.datasets import (
    REAL_GRAPH_SPECS,
    ClickDataset,
    ClickSample,
    scaled_real_graph_standin,
    synthetic_click_dataset,
)
from repro.workloads.graph_workload import GraphWorkload, GraphWorkloadConfig
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload, ZipfianGenerator

__all__ = [
    "Bookstore",
    "BookstoreConfig",
    "ViolationCounter",
    "REAL_GRAPH_SPECS",
    "ClickDataset",
    "ClickSample",
    "scaled_real_graph_standin",
    "synthetic_click_dataset",
    "GraphWorkload",
    "GraphWorkloadConfig",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfianGenerator",
]
