"""The Section 7.1 online-bookstore experiment (Fig 11).

An inventory of books, each with an initial stock; ``c`` concurrent
customers repeatedly select ``b`` books, check their stock, think for
``t`` (simulated steps), then decrement the stocks *without
re-validating* — a textbook write-skew-prone transaction.  A curator
periodically resets non-positive stocks.  A *violation* is a purchase
write that leaves a stock negative; the experiment correlates the
violation rate with the monitor's 2-/3-cycle counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.types import Operation, OpType
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator


@dataclass
class BookstoreConfig:
    """Paper parameters (scaled): 1000 books, stock 10, c/b/t varied."""

    num_books: int = 200
    initial_stock: int = 10
    customers: int = 8          # the paper's c (number of workers)
    books_per_order: int = 3    # the paper's b
    think_time: int = 20        # the paper's t, in simulator steps
    curator_interval: int = 400  # purchases between curator sweeps
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_books < 1 or self.customers < 1 or self.books_per_order < 1:
            raise ValueError("num_books, customers and books_per_order must be >= 1")
        if self.books_per_order > self.num_books:
            raise ValueError("books_per_order cannot exceed num_books")


class ViolationCounter:
    """Simulator listener counting purchase writes that go negative."""

    def __init__(self, store: dict) -> None:
        self._store = store
        self.violations = 0
        self.purchase_writes = 0
        self.suspended = False  # set while the curator runs

    def on_operation(self, op: Operation) -> None:
        if self.suspended or op.op is not OpType.WRITE or not _is_book(op.key):
            return
        self.purchase_writes += 1
        value = self._store.get(op.key, 0)
        if value is not None and value < 0:
            self.violations += 1

    @property
    def violation_rate(self) -> float:
        if self.purchase_writes == 0:
            return 0.0
        return self.violations / self.purchase_writes


def _is_book(key) -> bool:
    return isinstance(key, str) and key.startswith("b")


class Bookstore:
    """Drives the bookstore workload on the simulator.

    Usage: construct, optionally subscribe monitors via
    ``simulator.subscribe``, then :meth:`run`.
    """

    def __init__(self, config: BookstoreConfig | None = None,
                 sim_config: SimConfig | None = None) -> None:
        self.config = config or BookstoreConfig()
        store = {self.book_key(i): self.config.initial_stock
                 for i in range(self.config.num_books)}
        self.simulator = Simulator(
            sim_config
            or SimConfig(num_workers=self.config.customers,
                         compute_jitter=self.config.think_time,
                         seed=self.config.seed),
            store=store,
        )
        self.counter = ViolationCounter(self.simulator.store)
        self.simulator.subscribe(self.counter)
        self._rng = random.Random(self.config.seed + 17)

    def book_key(self, index: int) -> str:
        return f"b{index}"

    @property
    def items(self) -> list[str]:
        return [self.book_key(i) for i in range(self.config.num_books)]

    def purchase_buu(self) -> Buu:
        """One customer order: read b stocks; decrement them if all > 0.

        The decrement is an additive write (a parameter-server-style
        delta), so concurrent stale orders can drive a stock negative —
        the violation the experiment measures.
        """
        books = [self.book_key(i) for i in
                 self._rng.sample(range(self.config.num_books),
                                  self.config.books_per_order)]

        def compute(values: dict) -> dict:
            if any((values.get(b) or 0) <= 0 for b in books):
                return {}  # customer leaves: no stock
            return {b: -1 for b in books}

        return Buu(reads=books, compute=compute, additive=True)

    def curator_buu(self) -> Buu:
        """Reset every non-positive stock to the initial level."""
        books = self.items

        def compute(values: dict) -> dict:
            return {
                b: self.config.initial_stock
                for b in books
                if (values.get(b) or 0) <= 0
            }

        return Buu(reads=books, compute=compute, additive=False)

    def run(self, num_purchases: int) -> ViolationCounter:
        """Run ``num_purchases`` orders with periodic curator sweeps."""
        remaining = num_purchases
        while remaining > 0:
            batch = min(self.config.curator_interval, remaining)
            self.simulator.run(self.purchase_buu() for _ in range(batch))
            remaining -= batch
            # run() drains pending purchase writes, so suspending the
            # violation counter here only skips the curator's own ops.
            self.counter.suspended = True
            self.simulator.run([self.curator_buu()])
            self.counter.suspended = False
        return self.counter
