"""A YCSB-style configurable key-value workload.

The paper's motivating class includes "a transaction in a weak
consistent key-value database" (§2.2).  This module provides the
standard benchmark shape for that: a mix of reads, blind updates and
read-modify-writes over a keyspace with Zipfian skew — hot keys are
where conflicts, and therefore anomalies, concentrate.

The Zipfian generator is the rejection-inversion-free classic from the
original YCSB paper (Gray et al.'s algorithm): O(1) per sample after a
small precomputation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.sim.buu import Buu


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, n) (YCSB's generator).

    ``theta`` is the skew: 0 < theta < 1; larger means more skew toward
    small ranks.  theta -> 0 approaches uniform.
    """

    def __init__(self, n: int, theta: float = 0.99,
                 rng: random.Random | None = None) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = rng or random.Random(0)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / i**theta for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def sample(self, count: int) -> list[int]:
        return [self.next() for _ in range(count)]


@dataclass
class YcsbConfig:
    """Workload mix, YCSB style.

    ``read``/``update``/``rmw`` proportions must sum to 1.  ``update``
    is a blind write; ``rmw`` reads then writes the same key — the
    conflict-prone primitive.  ``records`` is the keyspace size,
    ``keys_per_txn`` how many keys one BUU touches.
    """

    records: int = 1000
    keys_per_txn: int = 2
    read: float = 0.5
    update: float = 0.0
    rmw: float = 0.5
    theta: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix must sum to 1, got {total}")
        if self.records < 1 or self.keys_per_txn < 1:
            raise ValueError("records and keys_per_txn must be >= 1")
        if self.keys_per_txn > self.records:
            raise ValueError("keys_per_txn cannot exceed records")


class YcsbWorkload:
    """BUU factory for the configured mix over a Zipfian keyspace."""

    def __init__(self, config: YcsbConfig | None = None) -> None:
        self.config = config or YcsbConfig()
        self._rng = random.Random(self.config.seed)
        self._zipf = ZipfianGenerator(self.config.records, self.config.theta,
                                      random.Random(self.config.seed + 1))

    @property
    def items(self) -> list[str]:
        return [self._key(i) for i in range(self.config.records)]

    def _key(self, record: int) -> str:
        return f"user{record}"

    def _pick_keys(self) -> list[str]:
        chosen: set[int] = set()
        guard = 0
        while len(chosen) < self.config.keys_per_txn and guard < 1000:
            chosen.add(self._zipf.next())
            guard += 1
        while len(chosen) < self.config.keys_per_txn:
            chosen.add(self._rng.randrange(self.config.records))
        return [self._key(r) for r in chosen]

    def make_buu(self) -> Buu:
        keys = self._pick_keys()
        roll = self._rng.random()
        if roll < self.config.read:
            return Buu(reads=keys, compute=lambda values: {})
        if roll < self.config.read + self.config.update:
            value = self._rng.random()
            return Buu(reads=[],
                       compute=lambda values, v=value, ks=keys: {
                           k: v for k in ks
                       },
                       writes_hint=keys)
        return Buu(reads=keys,
                   compute=lambda values, ks=keys: {
                       k: (values.get(k) or 0) + 1 for k in ks
                   })

    def buus(self, count: int) -> Iterator[Buu]:
        for _ in range(count):
            yield self.make_buu()
