"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on four multi-gigabyte real graphs (Table 2) and the
Criteo terabyte click logs.  Neither is available offline, so this module
generates scaled substitutes that preserve the properties the experiments
exercise: heavy-tailed degree distributions (conflict skew) for the
graphs, and sparse one-hot features with a planted linear model for the
click data.  DESIGN.md §2 documents the substitution rationale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.graph.random_graphs import UndirectedGraph, preferential_attachment_graph

#: Table 2, as printed in the paper: |V|, |E|, average degree.
REAL_GRAPH_SPECS: dict[str, dict[str, float]] = {
    "friendster": {"vertices": 65_608_366, "edges": 1_806_067_135, "degree": 27.53},
    "twitter-mpi": {"vertices": 52_579_682, "edges": 1_963_263_821, "degree": 38.50},
    "sk-2005": {"vertices": 50_636_154, "edges": 1_949_412_601, "degree": 38.50},
    "uk-2007-05": {"vertices": 105_896_555, "edges": 3_738_733_648, "degree": 35.31},
}


def scaled_real_graph_standin(
    name: str, scale: float = 2e-5, rng: random.Random | None = None
) -> UndirectedGraph:
    """A preferential-attachment stand-in for one of the Table 2 graphs.

    ``scale`` multiplies the vertex count (default keeps graphs around a
    couple of thousand vertices); the average degree matches the real
    dataset, which is what drives conflict skew in the workload.
    """
    if name not in REAL_GRAPH_SPECS:
        raise ValueError(f"unknown dataset {name!r}; options: {sorted(REAL_GRAPH_SPECS)}")
    spec = REAL_GRAPH_SPECS[name]
    num_vertices = max(100, int(spec["vertices"] * scale))
    return preferential_attachment_graph(
        num_vertices, spec["degree"], rng=rng or random.Random(hash(name) & 0xFFFF)
    )


@dataclass
class ClickSample:
    """One synthetic click-log row: active feature ids and a ±1 label."""

    features: list[int]
    label: int


@dataclass
class ClickDataset:
    """A synthetic Criteo substitute with a planted ground-truth model."""

    samples: list[ClickSample]
    num_features: int
    true_weights: list[float] = field(repr=False)

    def weight_key(self, feature: int) -> str:
        return f"w{feature}"

    @property
    def weight_keys(self) -> list[str]:
        return [self.weight_key(i) for i in range(self.num_features)]


def synthetic_click_dataset(
    num_samples: int = 400,
    num_features: int = 80,
    features_per_sample: int = 5,
    noise: float = 0.05,
    rng: random.Random | None = None,
) -> ClickDataset:
    """Generate sparse one-hot click data from a planted logistic model.

    Each sample activates ``features_per_sample`` random features
    (one-hot encoding of categorical attributes, as the paper describes);
    the label is drawn from the planted model's probability, flipped with
    probability ``noise``.  Because the generating model is known, "the
    number of BUUs to reach the optimum" has a concrete meaning: loss
    within a tolerance of the planted model's loss.
    """
    rng = rng or random.Random(0)
    true_weights = [rng.gauss(0.0, 1.5) for _ in range(num_features)]
    samples = []
    for _ in range(num_samples):
        feats = rng.sample(range(num_features), features_per_sample)
        z = sum(true_weights[f] for f in feats)
        p = 1.0 / (1.0 + math.exp(-z))
        label = 1 if rng.random() < p else -1
        if rng.random() < noise:
            label = -label
        samples.append(ClickSample(feats, label))
    return ClickDataset(samples, num_features, true_weights)
