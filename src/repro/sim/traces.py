"""Recording and replaying operation traces (JSONL).

A *trace* is a portable record of one simulated execution: the
visibility-ordered operation stream and the BUU lifecycle events.  Traces
let a monitoring configuration be debugged against a frozen execution,
make bug reports reproducible, and are how the bench harness feeds
byte-identical conflicts to different collectors.

Format: one JSON object per line —

    {"t": "op", "op": "r"|"w", "buu": 3, "key": "x", "seq": 17}
    {"t": "begin"|"commit", "buu": 3, "time": 12}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

from repro.core.api import MonitorListener
from repro.core.types import Operation, OpType


class TraceWriter:
    """Simulator listener that streams events to a JSONL file handle."""

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self.events_written = 0

    def on_operation(self, op: Operation) -> None:
        self._write({"t": "op", "op": op.op.value, "buu": op.buu,
                     "key": op.key, "seq": op.seq})

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.on_operation(op)

    def begin_buu(self, buu: int, time: int | None = None) -> None:
        self._write({"t": "begin", "buu": buu, "time": time or 0})

    def commit_buu(self, buu: int, time: int | None = None) -> None:
        self._write({"t": "commit", "buu": buu, "time": time or 0})

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self.events_written += 1


class Trace:
    """An in-memory trace: ops plus lifecycle events."""

    def __init__(self) -> None:
        self.ops: list[Operation] = []
        self.begins: list[tuple[int, int]] = []
        self.commits: list[tuple[int, int]] = []

    # -- capture ------------------------------------------------------------

    def on_operation(self, op: Operation) -> None:
        self.ops.append(op)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.on_operation(op)

    def begin_buu(self, buu: int, time: int | None = None) -> None:
        self.begins.append((buu, time or 0))

    def commit_buu(self, buu: int, time: int | None = None) -> None:
        self.commits.append((buu, time or 0))

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        with open(path, "w") as handle:
            writer = TraceWriter(handle)
            events: list[tuple[int, int, dict]] = []
            for buu, t in self.begins:
                events.append((t, 0, {"t": "begin", "buu": buu, "time": t}))
            for op in self.ops:
                events.append(
                    (op.seq, 1, {"t": "op", "op": op.op.value, "buu": op.buu,
                                 "key": op.key, "seq": op.seq})
                )
            for buu, t in self.commits:
                events.append((t, 2, {"t": "commit", "buu": buu, "time": t}))
            for _, _, record in sorted(events, key=lambda e: (e[0], e[1])):
                writer._write(record)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        trace = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record["t"]
                if kind == "op":
                    trace.ops.append(
                        Operation(OpType(record["op"]), record["buu"],
                                  record["key"], record["seq"])
                    )
                elif kind == "begin":
                    trace.begins.append((record["buu"], record["time"]))
                elif kind == "commit":
                    trace.commits.append((record["buu"], record["time"]))
                else:
                    raise ValueError(f"unknown trace record type {kind!r}")
        return trace

    # -- replay ---------------------------------------------------------------

    def replay(self, listeners: Iterable[MonitorListener]) -> None:
        """Deliver the trace's events, in time order, to listeners that
        implement the simulator's listener protocol."""
        events: list[tuple[int, int, str, object]] = []
        for buu, t in self.begins:
            events.append((t, 0, "begin", buu))
        for op in self.ops:
            events.append((op.seq, 1, "op", op))
        for buu, t in self.commits:
            events.append((t, 2, "commit", buu))
        listeners = list(listeners)
        for t, _, kind, payload in sorted(events, key=lambda e: (e[0], e[1])):
            for listener in listeners:
                if kind == "op":
                    handler = getattr(listener, "on_operation", None)
                    if handler is not None:
                        handler(payload)
                else:
                    handler = getattr(listener, f"{kind}_buu", None)
                    if handler is not None:
                        handler(payload, t)
