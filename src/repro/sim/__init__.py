"""Concurrency simulator: the reproduction's multi-core substrate."""

from repro.sim.buu import Buu, ComputeFn, read_modify_write
from repro.sim.scheduler import SimConfig, Simulator, ThreadedWorkloadDriver
from repro.sim.traces import Trace, TraceWriter

__all__ = ["Buu", "ComputeFn", "read_modify_write", "SimConfig", "Simulator",
           "ThreadedWorkloadDriver", "Trace", "TraceWriter"]
