"""Basic update units (BUUs) as executable specifications.

Section 2.2: a BUU is a user-specified group of reads and writes that the
application would like to be atomic — a sub-gradient step, a vertex's
label propagation, a lightweight transaction.  Here a BUU declares the
keys it reads and a pure ``compute`` function that maps the values it
read to the values it writes; the simulator supplies the (possibly stale)
read values and schedules the writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.types import Key

#: compute(read_values) -> {key: new_value}
ComputeFn = Callable[[dict[Key, Any]], dict[Key, Any]]


@dataclass
class Buu:
    """One basic update unit.

    ``reads`` are issued one per simulator step (in order), then
    ``compute`` runs, then each write is issued one per step.  If
    ``compute`` is None, ``writes_hint`` keys are written back with their
    read values unchanged (a pure read-modify-write of identity, still
    generating conflicts).

    ``additive`` selects parameter-server write semantics (Appendix A):
    the computed value is *added* to the stored value at apply time
    instead of overwriting it.  Gradient pushes and stock decrements are
    additive; label/colour assignments are overwrites.
    """

    reads: Sequence[Key]
    compute: ComputeFn | None = None
    writes_hint: Sequence[Key] = field(default_factory=tuple)
    additive: bool = False
    tag: Any = None

    def run_compute(self, values: dict[Key, Any]) -> dict[Key, Any]:
        if self.compute is not None:
            return self.compute(values)
        return {key: values.get(key) for key in self.writes_hint}


def read_modify_write(keys: Sequence[Key], update: Callable[[Any], Any]) -> Buu:
    """A BUU that reads ``keys`` and writes ``update(value)`` back to each."""

    def compute(values: dict[Key, Any]) -> dict[Key, Any]:
        return {key: update(values.get(key)) for key in keys}

    return Buu(reads=list(keys), compute=compute)
