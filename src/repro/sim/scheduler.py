"""Discrete-event simulator of a weak-isolation multi-worker system.

This is the reproduction's substitute for the paper's 32/128-core EC2
machines.  ``C`` logical workers execute BUUs with *no isolation*: the
scheduler advances one worker by one operation per step, chosen by a
seeded RNG, so reads and writes of concurrent BUUs interleave freely.
Three knobs shape the chaos, mirroring the paper's experiments:

- ``write_latency`` — a write becomes visible (applied to the store)
  only ``write_latency`` steps after it is issued, modelling asynchronous
  communication.  A worker *does not wait*: it issues its writes and
  moves on to the next BUU, so reads get staler as latency grows.
- ``staleness_bound`` — the paper's ``s``, with stale-synchronous-
  parallel semantics: a worker may not *start* a new BUU while ``s`` or
  more of its own BUUs are still uncommitted (writes not yet visible).
  ``s = 1`` degenerates to synchronous execution (each BUU's effects are
  visible before the worker's next BUU); ``None`` is fully asynchronous.
  Larger ``s`` lets a worker pipeline deeper, so its later reads race
  its own and others' pending writes — exactly the paper's staleness
  pathology.
- ``sync_frequency`` — the Figure 2 barrier: after every
  ``sync_frequency × C`` BUU completions a global barrier drains every
  in-flight BUU and pending write before anyone proceeds.

Every *visible* operation (reads at issue time, writes at apply time) is
forwarded to subscribed listeners in a single global order — exactly the
stream the paper's collector observes inside the storage layer.  BUU
``begin``/``commit`` events are forwarded too (commit fires when the
BUU's last write becomes visible, the paper's definition of commit time),
for the detector's pruning.

Listeners are typed against the
:class:`~repro.core.api.MonitorListener` protocol; dispatch remains
``getattr``-based so partial listeners (e.g. metrics probes that only
care about operations) keep working.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.api import MonitorListener
from repro.core.types import BuuId, Key, Operation, OpType
from repro.sim.buu import Buu


@dataclass
class SimConfig:
    """Simulator knobs (see module docstring)."""

    num_workers: int = 32
    write_latency: int = 0
    staleness_bound: int | None = None
    sync_frequency: int | None = None
    compute_jitter: int = 0
    isolation: str = "none"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.write_latency < 0:
            raise ValueError("write_latency must be >= 0")
        if self.compute_jitter < 0:
            raise ValueError("compute_jitter must be >= 0")
        if self.staleness_bound is not None and self.staleness_bound < 1:
            raise ValueError("staleness_bound must be >= 1 or None")
        if self.isolation not in ("none", "serializable", "snapshot"):
            raise ValueError(
                'isolation must be "none", "serializable" or "snapshot"'
            )
        if self.sync_frequency is not None and self.sync_frequency < 1:
            raise ValueError("sync_frequency must be >= 1 or None")


class _Inflight:
    """A BUU whose writes are issued but not yet all visible."""

    __slots__ = ("pending", "done_issuing", "worker", "writes")

    def __init__(self, worker: int) -> None:
        self.pending = 0
        self.done_issuing = False
        self.worker = worker
        # Buffered (key, value, additive) writes, installed atomically
        # at commit under snapshot isolation.
        self.writes: list[tuple[Key, Any, bool]] = []


class _WorkerState:
    """Execution state of one logical worker."""

    __slots__ = ("index", "buu", "buu_id", "read_cursor", "write_queue",
                 "values", "writes_issued", "writes_applied", "jitter_left",
                 "own_uncommitted", "snapshot_time")

    def __init__(self, index: int) -> None:
        self.index = index
        self.buu: Buu | None = None
        self.buu_id: BuuId = -1
        self.read_cursor = 0
        self.write_queue: list[tuple[Key, Any]] | None = None
        self.values: dict[Key, Any] = {}
        self.writes_issued = 0
        self.writes_applied = 0
        self.jitter_left = 0
        self.own_uncommitted = 0
        self.snapshot_time = 0

    @property
    def idle(self) -> bool:
        return self.buu is None

    @property
    def outstanding(self) -> int:
        """This worker's writes issued but not yet visible."""
        return self.writes_issued - self.writes_applied


class Simulator:
    """Resumable discrete-event execution engine.

    Call :meth:`run` with a batch of BUUs (assigned to idle workers in
    order); call it again with more BUUs to continue — the clock, pending
    writes and listener streams persist, which is how iterative workloads
    (ASGD rounds, WCC supersteps) are driven.  Each :meth:`run` drains
    all pending writes before returning, so the store a caller inspects
    between runs is fully up to date.
    """

    def __init__(
        self,
        config: SimConfig,
        store: dict[Key, Any] | None = None,
        listeners: Iterable[MonitorListener] | None = None,
    ) -> None:
        self.config = config
        self.store: dict[Key, Any] = store if store is not None else {}
        self.listeners: list[MonitorListener] = list(listeners or [])
        self._rng = random.Random(config.seed)
        self._workers = [_WorkerState(i) for i in range(config.num_workers)]
        # (apply_time, tiebreak, buu, key, value, worker index, additive)
        self._apply_heap: list[tuple[int, int, BuuId, Key, Any, int, bool]] = []
        self._heap_tiebreak = 0
        self._inflight: dict[BuuId, _Inflight] = {}
        self._locks: dict[Key, BuuId] = {}
        # Version history per key, kept only under snapshot isolation:
        # list of (visible_at, value) in apply order, plus the value each
        # key held before its first recorded version.
        self._versions: dict[Key, list[tuple[int, Any]]] = {}
        self._base_values: dict[Key, Any] = {}
        self.now = 0
        self.buus_completed = 0
        self.buus_started = 0
        self._next_buu_id = 0
        self._since_barrier = 0

    # -- listener fan-out ------------------------------------------------------

    def subscribe(self, listener: MonitorListener) -> None:
        self.listeners.append(listener)

    def _notify_op(self, op: Operation) -> None:
        for listener in self.listeners:
            handler = getattr(listener, "on_operation", None)
            if handler is not None:
                handler(op)

    def _notify_begin(self, buu: BuuId) -> None:
        for listener in self.listeners:
            handler = getattr(listener, "begin_buu", None)
            if handler is not None:
                handler(buu, self.now)

    def _notify_commit(self, buu: BuuId) -> None:
        for listener in self.listeners:
            handler = getattr(listener, "commit_buu", None)
            if handler is not None:
                handler(buu, self.now)

    # -- main loop ---------------------------------------------------------------

    def run(self, buus: Iterable[Buu]) -> int:
        """Execute ``buus`` to completion; returns BUUs committed."""
        queue = list(buus)
        queue.reverse()  # pop from the end
        completed_before = self.buus_completed
        while True:
            self._apply_due_writes()
            if queue:
                for worker in self._workers:
                    if not worker.idle or not queue:
                        continue
                    if not self._can_start(worker, queue[-1]):
                        continue
                    self._start_buu(worker, queue.pop())
            runnable = [w for w in self._workers if not w.idle]
            if runnable:
                worker = runnable[self._rng.randrange(len(runnable))]
                self.now += 1
                self._step_worker(worker)
                if (
                    self.config.sync_frequency is not None
                    and self._since_barrier
                    >= self.config.sync_frequency * self.config.num_workers
                ):
                    self._barrier_drain()
                continue
            if self._apply_heap:
                # Everyone blocked (or idle) but writes are in flight:
                # advance the clock to the next visibility event.
                self.now = max(self.now + 1, self._apply_heap[0][0])
                continue
            if queue:
                continue
            break
        self._barrier_drain()
        return self.buus_completed - completed_before

    # -- worker micro-steps ---------------------------------------------------

    def _start_buu(self, worker: _WorkerState, buu: Buu) -> None:
        worker.buu = buu
        worker.buu_id = self._next_buu_id
        self._next_buu_id += 1
        worker.read_cursor = 0
        worker.write_queue = None
        worker.values = {}
        worker.own_uncommitted += 1
        worker.snapshot_time = self.now
        self._inflight[worker.buu_id] = _Inflight(worker.index)
        if self.config.isolation == "serializable":
            for key in self._lock_set(buu):
                self._locks[key] = worker.buu_id
        self.buus_started += 1
        self._notify_begin(worker.buu_id)

    def _can_start(self, worker: _WorkerState, buu: Buu) -> bool:
        """Admission gate: the stale-synchronous bound, plus — under the
        serializable isolation controller (Fig 4) — conservative 2PL:
        every key the BUU touches must be unlocked.  Acquiring all locks
        up front is deadlock-free; it assumes writes target keys that
        were read (or declared in ``writes_hint``), which holds for every
        workload in this repository."""
        bound = self.config.staleness_bound
        if bound is not None and worker.own_uncommitted >= bound:
            return False
        if self.config.isolation == "serializable":
            for key in self._lock_set(buu):
                if key in self._locks:
                    return False
        return True

    @staticmethod
    def _lock_set(buu: Buu):
        return set(buu.reads) | set(buu.writes_hint)

    def _step_worker(self, worker: _WorkerState) -> None:
        buu = worker.buu
        assert buu is not None
        if worker.jitter_left > 0:
            # Variable "compute time" between the read and write phases:
            # desynchronises otherwise-identical workers, like real
            # gradient computations of varying cost.
            worker.jitter_left -= 1
            return
        if worker.read_cursor < len(buu.reads):
            key = buu.reads[worker.read_cursor]
            worker.read_cursor += 1
            if self.config.isolation == "snapshot":
                worker.values[key] = self._read_snapshot(
                    key, worker.snapshot_time
                )
            else:
                worker.values[key] = self.store.get(key)
            self._notify_op(Operation(OpType.READ, worker.buu_id, key, self.now))
            if worker.read_cursor == len(buu.reads):
                if self.config.compute_jitter:
                    worker.jitter_left = self._rng.randrange(
                        self.config.compute_jitter + 1
                    )
                self._prepare_writes(worker)
            return
        if worker.write_queue is None:
            self._prepare_writes(worker)
        assert worker.write_queue is not None
        if worker.write_queue:
            key, value = worker.write_queue.pop(0)
            worker.writes_issued += 1
            record = self._inflight[worker.buu_id]
            record.pending += 1
            if self.config.write_latency == 0:
                self._apply_write(worker.buu_id, key, value, worker.index,
                                  buu.additive)
            else:
                self._heap_tiebreak += 1
                heapq.heappush(
                    self._apply_heap,
                    (self.now + self.config.write_latency, self._heap_tiebreak,
                     worker.buu_id, key, value, worker.index, buu.additive),
                )
        if not worker.write_queue:
            # All operations issued: the worker moves on; the BUU commits
            # when its last write becomes visible.
            record = self._inflight[worker.buu_id]
            record.done_issuing = True
            self._maybe_commit(worker.buu_id)
            worker.buu = None
            worker.write_queue = None

    def _prepare_writes(self, worker: _WorkerState) -> None:
        buu = worker.buu
        assert buu is not None
        worker.write_queue = list(buu.run_compute(worker.values).items())

    # -- write visibility -------------------------------------------------------

    def _apply_write(self, buu: BuuId, key: Key, value: Any, widx: int,
                     additive: bool = False) -> None:
        record = self._inflight[buu]
        if self.config.isolation == "snapshot":
            # True SI: the write has *arrived* but is buffered; the whole
            # BUU installs atomically at commit.
            record.writes.append((key, value, additive))
        else:
            if additive:
                self.store[key] = (self.store.get(key) or 0) + value
            else:
                self.store[key] = value
            self._notify_op(Operation(OpType.WRITE, buu, key, self.now))
        worker = self._workers[widx]
        worker.writes_applied += 1
        record.pending -= 1
        self._maybe_commit(buu)

    def _maybe_commit(self, buu: BuuId) -> None:
        record = self._inflight.get(buu)
        if record is None or not record.done_issuing or record.pending > 0:
            return
        del self._inflight[buu]
        if self.config.isolation == "snapshot":
            # Install all of this BUU's writes at one timestamp: a
            # snapshot either sees the whole BUU or none of it.
            for key, value, additive in record.writes:
                if key not in self._versions:
                    self._base_values[key] = self.store.get(key)
                    self._versions[key] = []
                if additive:
                    self.store[key] = (self.store.get(key) or 0) + value
                else:
                    self.store[key] = value
                self._versions[key].append((self.now, self.store[key]))
                self._notify_op(Operation(OpType.WRITE, buu, key, self.now))
        self._workers[record.worker].own_uncommitted -= 1
        if self._locks:
            held = [key for key, owner in self._locks.items() if owner == buu]
            for key in held:
                del self._locks[key]
        self._notify_commit(buu)
        self.buus_completed += 1
        self._since_barrier += 1

    def _read_snapshot(self, key: Key, as_of: int) -> Any:
        """The value of ``key`` as of time ``as_of`` (snapshot isolation).

        Keys written before the simulator entered snapshot mode have only
        their current value, which acts as version zero.
        """
        versions = self._versions.get(key)
        if not versions:
            return self.store.get(key)
        value = None
        found = False
        for visible_at, candidate in versions:
            if visible_at <= as_of:
                value = candidate
                found = True
            else:
                break
        if found:
            return value
        # Every recorded version is newer than the snapshot: fall back to
        # the value the key held before its first recorded write.
        return self._base_values.get(key)

    def _apply_due_writes(self) -> None:
        while self._apply_heap and self._apply_heap[0][0] <= self.now:
            _, _, buu, key, value, widx, additive = heapq.heappop(self._apply_heap)
            self._apply_write(buu, key, value, widx, additive)

    def _barrier_drain(self) -> None:
        """Global barrier: finish all in-flight BUUs, flush all writes."""
        self._since_barrier = 0
        while any(not w.idle for w in self._workers) or self._apply_heap:
            self._apply_due_writes()
            runnable = [w for w in self._workers if not w.idle]
            if runnable:
                worker = runnable[self._rng.randrange(len(runnable))]
                self.now += 1
                self._step_worker(worker)
            elif self._apply_heap:
                self.now = max(self.now + 1, self._apply_heap[0][0])
            else:
                break


class ThreadedWorkloadDriver:
    """Execute BUUs on N *real* OS threads against a shared store.

    Where :class:`Simulator` interleaves logical workers under a seeded
    RNG, this driver produces genuine concurrency: each thread runs its
    share of the BUU list against one shared dict with no isolation, so
    the anomalies the monitor sees come from actual races.  It exists to
    drive the concurrent monitoring service
    (:class:`~repro.core.concurrent.RushMonService`) — or any listener
    implementing the simulator's protocol — from many threads at once.

    Two invariants make the emitted operation stream a valid collector
    input:

    - **Per-key visibility order.**  Store access and listener
      notification for a key happen atomically under a striped per-key
      lock, so every listener observes the operations on one key in the
      exact order the store applied them (the §2.1 contract).  Keys in
      different stripes proceed fully in parallel.
    - **Lifecycle order.**  ``begin`` precedes all of a BUU's operations
      and ``commit`` follows its last write (thread program order), which
      is what detector pruning assumes.

    ``seq`` values come from one atomic global counter; they are
    monotone per key and per BUU but are *not* a serialization of the
    whole run — the service re-stamps events with journal tickets, and
    the serial :class:`~repro.core.monitor.RushMon` only requires per-key
    order.

    ``yield_every`` forces a ``time.sleep(0)`` context-switch point on
    average every that-many operations (per-thread seeded RNG), widening
    the space of interleavings the GIL would otherwise make coarse —
    useful for stress tests hunting ordering bugs.
    """

    def __init__(
        self,
        listeners: Iterable[MonitorListener] | None = None,
        num_threads: int = 4,
        store: dict[Key, Any] | None = None,
        lock_stripes: int = 64,
        seed: int = 0,
        yield_every: int | None = None,
        join_timeout: float = 120.0,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if lock_stripes < 1:
            raise ValueError("lock_stripes must be >= 1")
        if yield_every is not None and yield_every < 1:
            raise ValueError("yield_every must be >= 1 or None")
        self.listeners: list[MonitorListener] = list(listeners or [])
        self.num_threads = num_threads
        self.store: dict[Key, Any] = store if store is not None else {}
        self.seed = seed
        self.yield_every = yield_every
        self.join_timeout = join_timeout
        self._stripes = [threading.Lock() for _ in range(lock_stripes)]
        self._ids = itertools.count()
        self._clock = itertools.count(1)
        self._counter_lock = threading.Lock()
        self.buus_completed = 0
        self.ops_emitted = 0

    def subscribe(self, listener: MonitorListener) -> None:
        self.listeners.append(listener)

    def _stripe(self, key: Key) -> threading.Lock:
        return self._stripes[hash(key) % len(self._stripes)]

    # -- execution -------------------------------------------------------------

    def run(self, buus: Iterable[Buu]) -> int:
        """Round-robin ``buus`` across the threads, run them all, and
        return the number completed.  Re-raises the first worker error;
        raises ``RuntimeError`` if a thread fails to finish within
        ``join_timeout`` seconds (deadlock guard)."""
        batch: Sequence[Buu] = list(buus)
        chunks = [batch[i::self.num_threads] for i in range(self.num_threads)]
        errors: list[BaseException] = []
        threads = [
            threading.Thread(
                target=self._worker,
                args=(chunk, self.seed ^ (index * 0x9E3779B1), errors),
                name=f"workload-{index}",
                daemon=True,
            )
            for index, chunk in enumerate(chunks)
            if chunk
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + self.join_timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                raise RuntimeError(
                    f"worker {thread.name} did not finish within "
                    f"{self.join_timeout}s (deadlock?)"
                )
        if errors:
            raise errors[0]
        return len(batch)

    def _worker(self, chunk: Sequence[Buu], seed: int,
                errors: list[BaseException]) -> None:
        rng = random.Random(seed)
        yield_p = 1.0 / self.yield_every if self.yield_every else 0.0
        completed = 0
        ops = 0
        try:
            for buu in chunk:
                ops += self._execute(buu, rng, yield_p)
                completed += 1
        except BaseException as exc:
            errors.append(exc)
        finally:
            with self._counter_lock:
                self.buus_completed += completed
                self.ops_emitted += ops

    def _execute(self, buu: Buu, rng: random.Random, yield_p: float) -> int:
        buu_id = next(self._ids)
        self._notify("begin_buu", buu_id, next(self._clock))
        values: dict[Key, Any] = {}
        ops = 0
        for key in buu.reads:
            with self._stripe(key):
                values[key] = self.store.get(key)
                self._notify_op(
                    Operation(OpType.READ, buu_id, key, next(self._clock))
                )
            ops += 1
            if yield_p and rng.random() < yield_p:
                time.sleep(0)
        for key, value in buu.run_compute(values).items():
            with self._stripe(key):
                if buu.additive:
                    self.store[key] = (self.store.get(key) or 0) + value
                else:
                    self.store[key] = value
                self._notify_op(
                    Operation(OpType.WRITE, buu_id, key, next(self._clock))
                )
            ops += 1
            if yield_p and rng.random() < yield_p:
                time.sleep(0)
        self._notify("commit_buu", buu_id, next(self._clock))
        return ops

    # -- listener fan-out -------------------------------------------------------

    def _notify_op(self, op: Operation) -> None:
        for listener in self.listeners:
            handler = getattr(listener, "on_operation", None)
            if handler is not None:
                handler(op)

    def _notify(self, method: str, buu: BuuId, when: int) -> None:
        for listener in self.listeners:
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(buu, when)
