"""RushMon reproduction: real-time isolation anomalies monitoring.

Public API re-exports live here; see README.md for a tour.
"""

__version__ = "1.0.0"
