"""RushMon reproduction: real-time isolation anomalies monitoring.

The blessed public surface is re-exported here (and enumerated in
``__all__`` — ``tests/test_public_api.py`` asserts every name resolves
and that the protocol verbs stay in sync with DESIGN.md's API table).
Everything else is importable but considered internal layout that may
move between releases.

The monitor family, all conforming to
:class:`~repro.core.api.AnomalyMonitor`:

- :class:`RushMon` — the serial in-process monitor (§5);
- :class:`RushMonService` — thread-safe sharded ingestion with a
  background detection pass;
- :class:`ClusterMonitor` — N worker *processes* behind one facade
  (:mod:`repro.cluster`);
- :class:`OfflineAnomalyMonitor` — the exact §4 baseline.

All are constructed from one :class:`RushMonConfig`.
"""

from repro.cluster import ClusterMonitor
from repro.core.api import AnomalyMonitor, MonitorListener
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.core.types import (
    AnomalyReport,
    CycleCounts,
    Edge,
    EdgeStats,
    EdgeType,
    Operation,
    OpType,
)

__version__ = "1.0.0"

__all__ = [
    "AnomalyMonitor",
    "AnomalyReport",
    "ClusterMonitor",
    "CycleCounts",
    "Edge",
    "EdgeStats",
    "EdgeType",
    "MonitorListener",
    "OfflineAnomalyMonitor",
    "OpType",
    "Operation",
    "RushMon",
    "RushMonConfig",
    "RushMonService",
    "__version__",
]
