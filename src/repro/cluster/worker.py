"""One cluster worker process: a key-range shard of collector+detector.

Why every worker is bit-exact
-----------------------------

The serial :class:`~repro.core.monitor.RushMon` applies one totally
ordered event stream to one collector and one detector.  The cluster
reproduces that execution *redundantly*: every worker's detector sees
**every** edge of the cluster-wide stream, in the global ticket order
the router assigned — its own edges through the counting path
(:meth:`CycleDetector.add_edge` via the window tracker) and its peers'
edges through :meth:`CycleDetector.add_edge_uncounted` — plus every
lifecycle event (broadcast by the router).  Hence each worker's live
graph evolves exactly like the serial monitor's.

What is *partitioned* is attribution.  Collection is data-centric: all
operations on a key are routed to the key's owner, so the owner derives
exactly the edges the serial collector would derive for those keys
(bookkeeping is per item, :class:`ItemSampler` is pure in the key, and
the per-key operation order equals the serial order).  A new cycle is
counted at the instant its *last* edge (in ticket order) enters the
graph — and that edge was derived by exactly one worker, which is the
only worker that inserts it through the counting path.  So the
per-worker :class:`CycleCounts` (and pattern and edge-stat tallies)
partition the serial monitor's counts exactly, and summing them — the
router's job — recovers the serial numbers bit for bit.  At ``sr = 1``
the sum therefore matches the exact offline checkers too.

(The one caveat is MOB: its reservoir uses one collector-level RNG, so
per-worker draw *order* differs from the serial interleaving.  Each
worker still runs a faithful Algorithm 2 over its keys — estimates stay
unbiased — but bit-for-bit differentials pin ``mob=False``.)

The merge
---------

Three ingredients keep the redundant executions in lockstep:

- **Tickets.**  The router stamps every event (operation or lifecycle)
  with a globally unique, monotone ticket.  Within one worker the
  streams are disjoint: its control stream carries its own operations
  and all lifecycle events, and each peer stream carries edge groups
  for that peer's operations only.
- **Watermarks.**  Every ``route`` batch carries the router's ticket
  high-water mark; after processing a batch the worker broadcasts its
  freshly derived edge groups — and that watermark — to all peers (an
  empty broadcast is a pure watermark advance, so idle shards never
  stall busy ones).
- **The N-stream merge.**  Each stream's queue is complete up to its
  watermark, so an event with ticket ``t`` is applied only once *every*
  stream's watermark is ``>= t`` — i.e. once no earlier event can still
  arrive.  Applying always picks the minimum pending ticket (a k-way
  heap merge up to the minimum watermark), so application order *is*
  ticket order.

A ``flush`` barrier closes the loop: the worker broadcasts its final
watermark, waits until the merge has drained every ticket up to the
barrier, and replies with raw, summable window components (estimator
linearity over item-disjoint shards, Theorem 5.2 — the router adds raw
counts *then* estimates, which at a shared sampling probability equals
summing per-shard estimates).
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from heapq import heapify, heappop, heapreplace

from repro.cluster import messages as msg
from repro.core.collector import DataCentricCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.frontier import decode_frontier
from repro.core.monitor import WindowTracker
from repro.core.pruning import make_pruner
from repro.core.types import Operation
from repro.net.protocol import FrameReader, ProtocolError, encode_frame

__all__ = ["ClusterWorker", "recv_message", "worker_main"]

_RECV = 1 << 16


def recv_message(sock: socket.socket, reader: FrameReader) -> dict:
    """Block until one complete message arrives on ``sock``.

    Messages already buffered in ``reader`` are drained first; a peer
    closing mid-message raises :class:`ConnectionError`.  Used for the
    lock-step handshakes (hello / peers / ready) on both ends.
    """
    for message in reader.feed(b""):
        return message
    while True:
        data = sock.recv(_RECV)
        if not data:
            raise ConnectionError("peer closed during handshake")
        for message in reader.feed(data):
            return message


class _PeerStream:
    """Pending edge groups and the ticket watermark of one peer."""

    __slots__ = ("pending", "mark")

    def __init__(self) -> None:
        self.pending: deque = deque()
        self.mark = 0


class ClusterWorker:
    """The engine and event loop of one worker process.

    Runs single-threaded collection (the control loop owns the
    collector) with per-peer reader threads feeding the merge; all
    merge state — pending queues, watermarks, detector, window — is
    guarded by one condition variable, which the flush barrier also
    waits on.
    """

    #: Seconds to wait for the peer mesh and for barrier drains.
    handshake_timeout = 30.0
    barrier_timeout = 120.0

    def __init__(self, index: int, num_workers: int,
                 config: RushMonConfig) -> None:
        self.index = index
        self.num_workers = num_workers
        self._merge = threading.Condition()
        self._local: deque = deque()
        self._local_mark = 0
        self._peers = {j: _PeerStream() for j in range(num_workers)
                       if j != index}
        self._peer_socks: dict[int, socket.socket] = {}
        self._route_high = 0
        self._build_engine(config)

    def _build_engine(self, config: RushMonConfig) -> None:
        """(Re)build collector/detector/window; merge state survives a
        rebuild (tickets and watermarks stay monotone across resets)."""
        self.config = config
        self.collector = DataCentricCollector(
            sampling_rate=config.sampling_rate,
            mob=config.mob,
            seed=config.seed,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(config.pruning),
            prune_interval=config.prune_interval,
            count_three=config.count_three_cycles,
        )
        self.window = WindowTracker(self.detector)
        self._local.clear()
        for stream in self._peers.values():
            stream.pending.clear()

    # -- the N-stream merge (callers hold self._merge) -----------------------

    def _advance_locked(self) -> None:
        """Apply every event that can no longer be preceded.

        Key invariant: each stream's queue is *complete up to its
        watermark* — edge groups travel in the same message as the mark
        that covers them, and a route batch's events all precede its
        ``high``.  So the safe frontier is simply ``g = min(mark over
        all streams)``: every pending event with ticket ``<= g`` is
        already queued somewhere, and a ticket-ordered k-way merge of
        the queues up to ``g`` *is* the serial order.  The merge runs
        on a heap of stream heads (one C-level heap op per event)
        instead of rescanning every stream per event; a lone busy
        stream drains as a straight run.
        """
        local = self._local
        peers = self._peers
        g = self._local_mark
        for stream in peers.values():
            if stream.mark < g:
                g = stream.mark
        heap = []
        if local and local[0][0] <= g:
            heap.append((local[0][0], -1, local))
        idx = 0
        for stream in peers.values():
            pending = stream.pending
            if pending and pending[0][0] <= g:
                idx += 1
                heap.append((pending[0][0], idx, pending))
        if not heap:
            return
        apply_local = self._apply_local
        uncounted = self.detector.add_edge_uncounted
        heapify(heap)
        replace = heapreplace
        pop = heappop
        while heap:
            if len(heap) == 1:
                # Run fast path: no other stream can interleave below g.
                _, i, queue = heap[0]
                if i < 0:
                    while queue and queue[0][0] <= g:
                        apply_local(queue.popleft())
                else:
                    while queue and queue[0][0] <= g:
                        for edge in queue.popleft()[1]:
                            uncounted(edge)
                return
            _, i, queue = heap[0]
            event = queue.popleft()
            if i < 0:
                apply_local(event)
            else:
                for edge in event[1]:
                    uncounted(edge)
            if queue and queue[0][0] <= g:
                replace(heap, (queue[0][0], i, queue))
            else:
                pop(heap)

    def _apply_local(self, event: tuple) -> None:
        kind = event[1]
        if kind == "o":
            self.window.observe_operation()
            observe = self.window.observe_edge
            for edge in event[3]:
                observe(edge)
        elif kind == "b":
            self.detector.begin_buu(event[2], event[3])
        else:
            self.detector.commit_buu(event[2], event[3])

    def _drained_locked(self, high: int) -> bool:
        if self._local or self._local_mark < high:
            return False
        return all(not s.pending and s.mark >= high
                   for s in self._peers.values())

    # -- control-loop handlers ----------------------------------------------

    def _handle_route(self, message: dict) -> None:
        seq = message["seq"]
        if seq <= self._route_high:
            # Duplicate delivery: re-ack, don't re-ingest — the same
            # high-water dedup the net server applies to batches.
            self._control.sendall(encode_frame(msg.cluster_ack(
                self._route_high)))
            return
        if seq != self._route_high + 1:
            raise ProtocolError(
                f"route sequence gap: got {seq}, expected "
                f"{self._route_high + 1}"
            )
        groups, local_batch = self._collect_route_events(message["events"])
        high = message["high"]
        with self._merge:
            self._local.extend(local_batch)
            if high > self._local_mark:
                self._local_mark = high
            self._advance_locked()
            self._merge.notify_all()
        self._route_high = seq
        self._broadcast(groups, high)
        self._control.sendall(encode_frame(msg.cluster_ack(seq)))

    def _collect_route_events(self, records: list) -> tuple[list, list]:
        """Decode one route batch, run its operations through the
        collector, and return ``(groups, local_batch)``.

        Operations go through :meth:`DataCentricCollector.handle_batch`
        (documented bit-identical to per-op handling, same RNG draw
        order) and the flat edge list is regrouped per ticket by
        ``(key, seq)``: the collector stamps every derived edge with
        the source operation's key (as ``label``) and ``seq``, so the
        regroup is exact *provided* no two operations in the batch
        share ``(key, seq)``.  That is checked up front — before
        ``handle_batch`` mutates collector state — and a batch with a
        duplicate falls back to per-op handling.
        """
        op_types = msg._OP_TYPES
        ops: list[Operation] = []
        slots: list[int] = []
        local_batch: list = []
        try:
            for record in records:
                kind = record[0]
                op_type = op_types.get(kind)
                if op_type is not None:
                    op = Operation(op_type, record[1], record[2], record[3])
                    ops.append(op)
                    slots.append(len(local_batch))
                    local_batch.append([record[4], "o", op, ()])
                elif kind == "b" or kind == "c":
                    local_batch.append((record[3], kind, record[1],
                                        record[2]))
                else:
                    raise ProtocolError(f"unknown event kind {kind!r}")
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(
                "malformed event record in route batch") from exc
        groups: list = []
        if not ops:
            return groups, local_batch
        if len({(op.key, op.seq) for op in ops}) != len(ops):
            handle = self.collector.handle
            for i, op in zip(slots, ops):
                derived = handle(op)
                if derived:
                    local_batch[i][3] = derived
                    groups.append((local_batch[i][0], derived))
            return groups, local_batch
        edges = self.collector.handle_batch(ops)
        by_op: dict = {}
        for edge in edges:
            k = (edge.label, edge.seq)
            group = by_op.get(k)
            if group is None:
                by_op[k] = [edge]
            else:
                group.append(edge)
        for i, op in zip(slots, ops):
            derived = by_op.get((op.key, op.seq))
            if derived is not None:
                local_batch[i][3] = derived
                groups.append((local_batch[i][0], derived))
        return groups, local_batch

    def _broadcast(self, groups: list, mark: int) -> None:
        if not self._peer_socks:
            return
        frame = encode_frame(msg.edges(self.index, groups, mark))
        for sock in self._peer_socks.values():
            sock.sendall(frame)

    def _handle_flush(self, message: dict) -> None:
        high = message["high"]
        with self._merge:
            if high > self._local_mark:
                self._local_mark = high
            self._advance_locked()
            self._merge.notify_all()
        self._broadcast([], high)
        deadline = time.monotonic() + self.barrier_timeout
        with self._merge:
            while not self._drained_locked(high):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"worker {self.index}: barrier at ticket {high} "
                        f"timed out after {self.barrier_timeout}s "
                        f"(a peer stalled or died)"
                    )
                self._merge.wait(remaining)
            if message["window"]:
                report = self.window.close(
                    end=message.get("now", 0),
                    probability=self.collector.sampling_probability,
                )
                reply = msg.report_reply(report, self.detector.counts)
            else:
                reply = msg.synced(self.detector.counts)
        self._control.sendall(encode_frame(reply))

    def _handle_reset(self, message: dict) -> None:
        config = RushMonConfig(**message["config"])
        with self._merge:
            self._build_engine(config)
        self._control.sendall(encode_frame(msg.reset_ok()))

    # -- peer exchange --------------------------------------------------------

    def _peer_loop(self, j: int, sock: socket.socket,
                   reader: FrameReader) -> None:
        stream = self._peers[j]
        try:
            while True:
                data = sock.recv(_RECV)
                if not data:
                    return
                for message in reader.feed(data):
                    if message["type"] == "edges":
                        groups, _ = decode_frontier(message["frontier"])
                        with self._merge:
                            if groups:
                                stream.pending.extend(groups)
                            if message["mark"] > stream.mark:
                                stream.mark = message["mark"]
                            self._advance_locked()
                            self._merge.notify_all()
                    elif message["type"] == "bye":
                        return
        except (OSError, ValueError):
            return  # torn down mid-recv during shutdown

    def _connect_mesh(self, ports: list[int]) -> None:
        """Build the full worker mesh: accept from higher indices,
        connect to lower ones (one duplex link per pair)."""
        expected = self.num_workers - 1 - self.index
        inbound: dict[int, tuple[socket.socket, FrameReader]] = {}
        failures: list[BaseException] = []

        def accept_loop() -> None:
            try:
                for _ in range(expected):
                    sock, _ = self._listener.accept()
                    reader = FrameReader()
                    hello = recv_message(sock, reader)
                    if hello["type"] != "peer-hello":
                        raise ProtocolError(
                            f"expected peer-hello, got {hello['type']!r}")
                    inbound[hello["index"]] = (sock, reader)
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        for j in range(self.index):
            sock = socket.create_connection(
                ("127.0.0.1", ports[j]), timeout=self.handshake_timeout)
            sock.settimeout(None)
            sock.sendall(encode_frame(msg.peer_hello(self.index)))
            self._peer_socks[j] = sock
            threading.Thread(
                target=self._peer_loop, args=(j, sock, FrameReader()),
                daemon=True, name=f"peer-{self.index}-{j}",
            ).start()
        acceptor.join(self.handshake_timeout)
        if failures:
            raise failures[0]
        if acceptor.is_alive() or len(inbound) != expected:
            raise RuntimeError(
                f"worker {self.index}: peer mesh incomplete "
                f"({len(inbound)}/{expected} inbound connections)"
            )
        for j, (sock, reader) in inbound.items():
            self._peer_socks[j] = sock
            threading.Thread(
                target=self._peer_loop, args=(j, sock, reader),
                daemon=True, name=f"peer-{self.index}-{j}",
            ).start()

    # -- lifecycle -------------------------------------------------------------

    def run(self, host: str, port: int) -> None:
        """Connect to the router, build the mesh, serve until ``bye``."""
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(self.handshake_timeout)
        self._control = socket.create_connection(
            (host, port), timeout=self.handshake_timeout)
        try:
            self._control.sendall(encode_frame(msg.worker_hello(
                self.index, self._listener.getsockname()[1])))
            reader = FrameReader()
            self._control.settimeout(self.handshake_timeout)
            peers_msg = recv_message(self._control, reader)
            if peers_msg["type"] != "peers":
                raise ProtocolError(
                    f"expected peers, got {peers_msg['type']!r}")
            self._connect_mesh(peers_msg["ports"])
            self._listener.close()
            self._control.sendall(encode_frame(msg.ready(self.index)))
            self._control.settimeout(None)
            self._serve(reader)
        except Exception as exc:
            try:
                self._control.sendall(encode_frame(msg.err(
                    f"worker {self.index}: {exc!r}")))
            except OSError:
                pass
            raise
        finally:
            for sock in self._peer_socks.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._control.close()

    def _serve(self, reader: FrameReader) -> None:
        handlers = {
            "route": self._handle_route,
            "flush": self._handle_flush,
            "reset": self._handle_reset,
        }
        while True:
            data = self._control.recv(_RECV)
            if not data:
                return  # router vanished; daemon exit
            for message in reader.feed(data):
                if message["type"] == "bye":
                    return
                handler = handlers.get(message["type"])
                if handler is None:
                    raise ProtocolError(
                        f"unexpected control message {message['type']!r}")
                handler(message)


def worker_main(index: int, num_workers: int, host: str, port: int,
                config_dict: dict) -> None:
    """Spawn entry point (must stay top-level importable for the
    ``spawn`` start method): build the engine and serve."""
    ClusterWorker(index, num_workers,
                  RushMonConfig(**config_dict)).run(host, port)
