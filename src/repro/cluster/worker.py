"""One cluster worker process: a key-range shard of collector+detector.

Why every worker is bit-exact
-----------------------------

The serial :class:`~repro.core.monitor.RushMon` applies one totally
ordered event stream to one collector and one detector.  The cluster
reproduces that execution *redundantly*: every worker's detector sees
**every** edge of the cluster-wide stream, in the global ticket order
the router assigned — its own edges through the counting path
(:meth:`CycleDetector.add_edge` via the window tracker) and its peers'
edges through :meth:`CycleDetector.add_edge_uncounted` — plus every
lifecycle event (broadcast by the router).  Hence each worker's live
graph evolves exactly like the serial monitor's.

What is *partitioned* is attribution.  Collection is data-centric: all
operations on a key are routed to the key's owner, so the owner derives
exactly the edges the serial collector would derive for those keys
(bookkeeping is per item, :class:`ItemSampler` is pure in the key, and
the per-key operation order equals the serial order).  A new cycle is
counted at the instant its *last* edge (in ticket order) enters the
graph — and that edge was derived by exactly one worker, which is the
only worker that inserts it through the counting path.  So the
per-worker :class:`CycleCounts` (and pattern and edge-stat tallies)
partition the serial monitor's counts exactly, and summing them — the
router's job — recovers the serial numbers bit for bit.  At ``sr = 1``
the sum therefore matches the exact offline checkers too.

(The one caveat is MOB: its reservoir uses one collector-level RNG, so
per-worker draw *order* differs from the serial interleaving.  Each
worker still runs a faithful Algorithm 2 over its keys — estimates stay
unbiased — but bit-for-bit differentials pin ``mob=False``.)

The merge
---------

Three ingredients keep the redundant executions in lockstep:

- **Tickets.**  The router stamps every event (operation or lifecycle)
  with a globally unique, monotone ticket.  Within one worker the
  streams are disjoint: its control stream carries its own operations
  and all lifecycle events, and each peer stream carries edge groups
  for that peer's operations only.
- **Watermarks.**  Every ``route`` batch carries the router's ticket
  high-water mark; after processing a batch the worker broadcasts its
  freshly derived edge groups — and that watermark — to all peers (an
  empty broadcast is a pure watermark advance, so idle shards never
  stall busy ones).
- **The N-stream merge.**  Each stream's queue is complete up to its
  watermark, so an event with ticket ``t`` is applied only once *every*
  stream's watermark is ``>= t`` — i.e. once no earlier event can still
  arrive.  Applying always picks the minimum pending ticket (a k-way
  heap merge up to the minimum watermark), so application order *is*
  ticket order.

A ``flush`` barrier closes the loop: the worker broadcasts its final
watermark, waits until the merge has drained every ticket up to the
barrier, and replies with raw, summable window components (estimator
linearity over item-disjoint shards, Theorem 5.2 — the router adds raw
counts *then* estimates, which at a shared sampling probability equals
summing per-shard estimates).

Self-healing
------------

The worker carries three mechanisms the router's supervisor builds
respawn-and-replay on (see :mod:`repro.cluster.monitor`):

- **Snapshot shipping.**  ``snap-request(high)`` is a barrier that
  replies with the shard's full state instead of a report: the worker
  drains its merge to ``high`` (everything at or below ``high`` is
  applied; groups from beyond the barrier may still sit pending, and
  a restore's ``resume=high`` redial re-delivers them) and ships
  collector + detector + window state in a CRC-guarded
  :func:`repro.storage.wal.encode_shard_snapshot` document.
- **The broadcast journal.**  Every edge-frontier broadcast is recorded
  (mark + encoded frame) in a bounded deque *before* it touches any
  socket, so a peer dying mid-send loses nothing recoverable.  When a
  respawned peer redials with ``peer-hello(resume=H)``, the journal
  suffix with marks ``> H`` is replayed onto the fresh link — under the
  same lock broadcasts take, so replay and live traffic cannot
  interleave out of order — before the link goes live.  A resume the
  trimmed journal can no longer cover is refused with ``resume-nack``
  (the supervisor then burns a restart attempt and, past the breaker,
  degrades).
- **Ticket dedup.**  Each peer stream tracks the highest group ticket
  it has enqueued (``seen``).  Group tickets within one peer's stream
  are strictly increasing, so dropping groups with ticket ``<= seen``
  makes journal replays and a respawned peer's re-broadcasts exactly
  idempotent.

A respawned worker starts from ``restore`` instead of ``peers``: it
installs the snapshot (or a fresh engine at the reset baseline on the
full-replay fallback), dials *every* live peer with a resume mark, and
replies ``restore-ok``; the router then replays the journaled route
suffix past the snapshot.  ``detach(j)`` drops a breaker-tripped shard
``j`` from the merge gating so the survivors keep counting without it
(degraded mode).
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from heapq import heapify, heappop, heapreplace

from repro.cluster import messages as msg
from repro.core.collector import DataCentricCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.frontier import decode_frontier
from repro.core.monitor import WindowTracker
from repro.core.pruning import make_pruner
from repro.core.types import Operation
from repro.net.protocol import FrameReader, ProtocolError, encode_frame
from repro.storage import wal
from repro.testing.faults import Fault, FaultInjector

__all__ = ["ClusterWorker", "recv_message", "worker_main"]

_RECV = 1 << 16


def recv_message(sock: socket.socket, reader: FrameReader) -> dict:
    """Block until one complete message arrives on ``sock``.

    Messages already buffered in ``reader`` are drained first; a peer
    closing mid-message raises :class:`ConnectionError`.  Used for the
    lock-step handshakes (hello / peers / ready) on both ends.
    """
    for message in reader.feed(b""):
        return message
    while True:
        data = sock.recv(_RECV)
        if not data:
            raise ConnectionError("peer closed during handshake")
        for message in reader.feed(data):
            return message


class _PeerStream:
    """Pending edge groups and the ticket watermark of one peer.

    ``seen`` is the highest group ticket ever *enqueued* from this peer
    — the dedup horizon that makes replayed broadcasts idempotent.
    ``detached`` marks a breaker-tripped shard whose frozen watermark
    must no longer gate the merge.
    """

    __slots__ = ("pending", "mark", "seen", "detached")

    def __init__(self) -> None:
        self.pending: deque = deque()
        self.mark = 0
        self.seen = 0
        self.detached = False


class ClusterWorker:
    """The engine and event loop of one worker process.

    Runs single-threaded collection (the control loop owns the
    collector) with per-peer reader threads feeding the merge; all
    merge state — pending queues, watermarks, detector, window — is
    guarded by one condition variable, which the flush barrier also
    waits on.  A persistent acceptor thread keeps the exchange
    listener open for the worker's whole life so respawned peers can
    redial at any time.
    """

    #: Seconds to wait for the peer mesh and for barrier drains.
    handshake_timeout = 30.0
    barrier_timeout = 120.0
    #: Redial attempts (and inter-attempt sleep) when a restored worker
    #: rebuilds its mesh against peers that may be mid-accept.
    redial_attempts = 5
    redial_sleep = 0.2

    def __init__(self, index: int, num_workers: int,
                 config: RushMonConfig,
                 faults: FaultInjector | None = None) -> None:
        self.index = index
        self.num_workers = num_workers
        self._faults = faults
        self._merge = threading.Condition()
        self._local: deque = deque()
        self._local_mark = 0
        self._peers = {j: _PeerStream() for j in range(num_workers)
                       if j != index}
        self._peer_socks: dict[int, socket.socket] = {}
        self._route_high = 0
        # Broadcast journal: (mark, encoded frame) in send order, bounded
        # by the config's replay window.  _bcast_trimmed is the highest
        # mark ever dropped — the oldest resume still serviceable.
        self._bcast_lock = threading.Lock()
        self._bcast_journal: deque = deque()
        self._bcast_trimmed = 0
        # Control-socket writes come from the control loop, peer-fatal
        # paths and (replies aside) nowhere else; serialize them so an
        # err frame never interleaves into an ack mid-frame.
        self._control_lock = threading.Lock()
        # Inbound mesh connections land here (acceptor thread -> run()).
        self._mesh_cond = threading.Condition()
        self._mesh_inbound: dict[int, tuple[socket.socket, FrameReader]] = {}
        self._accept_errors: list[BaseException] = []
        self._build_engine(config)

    def _build_engine(self, config: RushMonConfig) -> None:
        """(Re)build collector/detector/window; merge state survives a
        rebuild (tickets and watermarks stay monotone across resets)."""
        self.config = config
        self.collector = DataCentricCollector(
            sampling_rate=config.sampling_rate,
            mob=config.mob,
            seed=config.seed,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(config.pruning),
            prune_interval=config.prune_interval,
            count_three=config.count_three_cycles,
        )
        self.window = WindowTracker(self.detector)
        self._local.clear()
        for stream in self._peers.values():
            stream.pending.clear()

    # -- the N-stream merge (callers hold self._merge) -----------------------

    def _advance_locked(self) -> None:
        """Apply every event that can no longer be preceded.

        Key invariant: each stream's queue is *complete up to its
        watermark* — edge groups travel in the same message as the mark
        that covers them, and a route batch's events all precede its
        ``high``.  So the safe frontier is simply ``g = min(mark over
        all streams)``: every pending event with ticket ``<= g`` is
        already queued somewhere, and a ticket-ordered k-way merge of
        the queues up to ``g`` *is* the serial order.  The merge runs
        on a heap of stream heads (one C-level heap op per event)
        instead of rescanning every stream per event; a lone busy
        stream drains as a straight run.  Detached shards (circuit
        breaker tripped) no longer gate ``g``; whatever they delivered
        before dying still merges in ticket order.
        """
        local = self._local
        peers = self._peers
        g = self._local_mark
        for stream in peers.values():
            if not stream.detached and stream.mark < g:
                g = stream.mark
        heap = []
        if local and local[0][0] <= g:
            heap.append((local[0][0], -1, local))
        idx = 0
        for stream in peers.values():
            pending = stream.pending
            if pending and pending[0][0] <= g:
                idx += 1
                heap.append((pending[0][0], idx, pending))
        if not heap:
            return
        apply_local = self._apply_local
        uncounted = self.detector.add_edge_uncounted
        heapify(heap)
        replace = heapreplace
        pop = heappop
        while heap:
            if len(heap) == 1:
                # Run fast path: no other stream can interleave below g.
                _, i, queue = heap[0]
                if i < 0:
                    while queue and queue[0][0] <= g:
                        apply_local(queue.popleft())
                else:
                    while queue and queue[0][0] <= g:
                        for edge in queue.popleft()[1]:
                            uncounted(edge)
                return
            _, i, queue = heap[0]
            event = queue.popleft()
            if i < 0:
                apply_local(event)
            else:
                for edge in event[1]:
                    uncounted(edge)
            if queue and queue[0][0] <= g:
                replace(heap, (queue[0][0], i, queue))
            else:
                pop(heap)

    def _apply_local(self, event: tuple) -> None:
        kind = event[1]
        if kind == "o":
            self.window.observe_operation()
            observe = self.window.observe_edge
            for edge in event[3]:
                observe(edge)
        elif kind == "b":
            self.detector.begin_buu(event[2], event[3])
        else:
            self.detector.commit_buu(event[2], event[3])

    def _drained_locked(self, high: int) -> bool:
        """True once every ticket ``<= high`` has been applied.

        A barrier promises nothing about tickets *beyond* it: while a
        respawned worker replays its journaled control stream, the
        surviving peers' resume replays deliver edge groups from far
        past the replayed barrier, and those legitimately sit pending
        until the local mark catches back up.  Requiring globally empty
        queues here would deadlock that replay — the control loop would
        block in this drain, pinning the local mark, which is exactly
        what those future groups are waiting on.  So: marks must cover
        ``high`` and nothing at or below ``high`` may remain pending;
        later groups may.  (Queues are ticket-ordered per stream, so
        the head ticket decides.)
        """
        if self._local_mark < high:
            return False
        if self._local and self._local[0][0] <= high:
            return False
        for stream in self._peers.values():
            if not stream.detached and stream.mark < high:
                return False
            if stream.pending and stream.pending[0][0] <= high:
                return False
        return True

    def _wait_drained(self, high: int, what: str) -> None:
        deadline = time.monotonic() + self.barrier_timeout
        with self._merge:
            while not self._drained_locked(high):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"worker {self.index}: {what} at ticket {high} "
                        f"timed out after {self.barrier_timeout}s "
                        f"(a peer stalled or died)"
                    )
                self._merge.wait(remaining)

    # -- control-loop handlers ----------------------------------------------

    def _send_control(self, frame: bytes) -> None:
        with self._control_lock:
            self._control.sendall(frame)

    def _handle_route(self, message: dict) -> None:
        seq = message["seq"]
        if seq <= self._route_high:
            # Duplicate delivery: re-ack, don't re-ingest — the same
            # high-water dedup the net server applies to batches.
            self._send_control(encode_frame(msg.cluster_ack(
                self._route_high)))
            return
        if seq != self._route_high + 1:
            raise ProtocolError(
                f"route sequence gap: got {seq}, expected "
                f"{self._route_high + 1}"
            )
        groups, local_batch = self._collect_route_events(message["events"])
        high = message["high"]
        with self._merge:
            self._local.extend(local_batch)
            if high > self._local_mark:
                self._local_mark = high
            self._advance_locked()
            self._merge.notify_all()
        self._route_high = seq
        self._broadcast(groups, high)
        self._send_control(encode_frame(msg.cluster_ack(seq)))

    def _collect_route_events(self, records: list) -> tuple[list, list]:
        """Decode one route batch, run its operations through the
        collector, and return ``(groups, local_batch)``.

        Operations go through :meth:`DataCentricCollector.handle_batch`
        (documented bit-identical to per-op handling, same RNG draw
        order) and the flat edge list is regrouped per ticket by
        ``(key, seq)``: the collector stamps every derived edge with
        the source operation's key (as ``label``) and ``seq``, so the
        regroup is exact *provided* no two operations in the batch
        share ``(key, seq)``.  That is checked up front — before
        ``handle_batch`` mutates collector state — and a batch with a
        duplicate falls back to per-op handling.
        """
        op_types = msg._OP_TYPES
        ops: list[Operation] = []
        slots: list[int] = []
        local_batch: list = []
        try:
            for record in records:
                kind = record[0]
                op_type = op_types.get(kind)
                if op_type is not None:
                    op = Operation(op_type, record[1], record[2], record[3])
                    ops.append(op)
                    slots.append(len(local_batch))
                    local_batch.append([record[4], "o", op, ()])
                elif kind == "b" or kind == "c":
                    local_batch.append((record[3], kind, record[1],
                                        record[2]))
                else:
                    raise ProtocolError(f"unknown event kind {kind!r}")
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(
                "malformed event record in route batch") from exc
        groups: list = []
        if not ops:
            return groups, local_batch
        if len({(op.key, op.seq) for op in ops}) != len(ops):
            handle = self.collector.handle
            for i, op in zip(slots, ops):
                derived = handle(op)
                if derived:
                    local_batch[i][3] = derived
                    groups.append((local_batch[i][0], derived))
            return groups, local_batch
        edges = self.collector.handle_batch(ops)
        by_op: dict = {}
        for edge in edges:
            k = (edge.label, edge.seq)
            group = by_op.get(k)
            if group is None:
                by_op[k] = [edge]
            else:
                group.append(edge)
        for i, op in zip(slots, ops):
            derived = by_op.get((op.key, op.seq))
            if derived is not None:
                local_batch[i][3] = derived
                groups.append((local_batch[i][0], derived))
        return groups, local_batch

    def _broadcast(self, groups: list, mark: int) -> None:
        """Journal one edge-frontier broadcast, then fan it out.

        The journal append happens *before* any send and under the same
        lock resume replays take, so (a) a broadcast a dead peer never
        received is still replayable, and (b) a freshly resumed link
        sees the journal suffix and then live frames in exact order.  A
        send failing on one link (the peer died) drops that link only;
        the supervisor owns the recovery.
        """
        if self._faults is not None:
            fault = self._faults.fire("cluster.exchange")
            if fault is not None:
                if fault.kind == "delay":
                    time.sleep(fault.delay)
                elif fault.kind == "exception":
                    raise fault.exc_factory()
        if self.num_workers == 1:
            return
        frame = encode_frame(msg.edges(self.index, groups, mark))
        capacity = self.config.replay_journal_capacity
        with self._bcast_lock:
            journal = self._bcast_journal
            journal.append((mark, frame))
            while len(journal) > capacity:
                trimmed_mark, _ = journal.popleft()
                if trimmed_mark > self._bcast_trimmed:
                    self._bcast_trimmed = trimmed_mark
            dead = []
            for j, sock in self._peer_socks.items():
                try:
                    sock.sendall(frame)
                except OSError:
                    dead.append(j)
            for j in dead:
                sock = self._peer_socks.pop(j)
                try:
                    sock.close()
                except OSError:
                    pass

    def _handle_flush(self, message: dict) -> None:
        high = message["high"]
        with self._merge:
            if high > self._local_mark:
                self._local_mark = high
            self._advance_locked()
            self._merge.notify_all()
        self._broadcast([], high)
        self._wait_drained(high, "barrier")
        with self._merge:
            if message["window"]:
                report = self.window.close(
                    end=message.get("now", 0),
                    probability=self.collector.sampling_probability,
                )
                reply = msg.report_reply(report, self.detector.counts)
            else:
                reply = msg.synced(self.detector.counts)
        self._send_control(encode_frame(reply))

    def _handle_snap_request(self, message: dict) -> None:
        """A snapshot barrier: drain to ``high`` exactly like a flush
        (every stream's mark reaches ``high``, every queue empties — the
        merge state serializes to nothing), then ship the shard state."""
        high = message["high"]
        with self._merge:
            if high > self._local_mark:
                self._local_mark = high
            self._advance_locked()
            self._merge.notify_all()
        self._broadcast([], high)
        self._wait_drained(high, "snapshot barrier")
        with self._merge:
            payload = {
                "index": self.index,
                "high": high,
                "route_high": self._route_high,
                "collector": self.collector.to_state(),
                "detector": wal.encode_detector_state(self.detector),
                "window": wal.encode_window_state(self.window),
            }
        self._send_control(encode_frame(msg.snap(
            wal.encode_shard_snapshot(payload))))

    def _handle_reset(self, message: dict) -> None:
        config = RushMonConfig(**message["config"])
        with self._merge:
            self._build_engine(config)
            base = self._local_mark
        with self._bcast_lock:
            # Pre-reset broadcasts restore nothing useful; a respawn
            # after a reset resumes at the reset baseline.
            self._bcast_journal.clear()
            self._bcast_trimmed = base
        self._send_control(encode_frame(msg.reset_ok()))

    def _handle_ping(self, message: dict) -> None:
        self._send_control(encode_frame(msg.pong(self.index)))

    def _handle_detach(self, message: dict) -> None:
        """Shard ``j``'s circuit breaker tripped: stop gating the merge
        on its frozen watermark (its already-delivered groups still
        merge in order) and drop its link."""
        j = message["index"]
        stream = self._peers.get(j)
        if stream is None:
            return
        with self._merge:
            stream.detached = True
            self._advance_locked()
            self._merge.notify_all()
        with self._bcast_lock:
            sock = self._peer_socks.pop(j, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- peer exchange --------------------------------------------------------

    def _start_peer_loop(self, j: int, sock: socket.socket,
                         reader: FrameReader) -> None:
        threading.Thread(
            target=self._peer_loop, args=(j, sock, reader),
            daemon=True, name=f"peer-{self.index}-{j}",
        ).start()

    def _peer_loop(self, j: int, sock: socket.socket,
                   reader: FrameReader) -> None:
        stream = self._peers[j]
        try:
            while True:
                data = sock.recv(_RECV)
                if not data:
                    return
                for message in reader.feed(data):
                    if message["type"] == "edges":
                        groups, _ = decode_frontier(message["frontier"])
                        with self._merge:
                            if groups:
                                # Group tickets in one peer's stream are
                                # strictly increasing, so everything at
                                # or below the dedup horizon is a replay
                                # duplicate.
                                seen = stream.seen
                                fresh = [grp for grp in groups
                                         if grp[0] > seen]
                                if fresh:
                                    stream.pending.extend(fresh)
                                    stream.seen = fresh[-1][0]
                            if message["mark"] > stream.mark:
                                stream.mark = message["mark"]
                            self._advance_locked()
                            self._merge.notify_all()
                    elif message["type"] == "resume-nack":
                        self._fatal(
                            f"worker {self.index}: peer {j} cannot replay "
                            f"broadcasts past mark {message['resume']} "
                            f"(journal trimmed to {message['trimmed']})"
                        )
                        return
                    elif message["type"] == "bye":
                        return
        except (OSError, ValueError):
            return  # torn down mid-recv during shutdown

    def _fatal(self, text: str) -> None:
        """Report a fatal condition detected off the control loop and
        tear the control link down so the supervisor takes over."""
        try:
            self._send_control(encode_frame(msg.err(text)))
        except OSError:
            pass
        try:
            self._control.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _accept_loop(self) -> None:
        """Lifetime acceptor for the exchange listener.

        Serves two kinds of inbound connection: initial mesh hellos
        (handed to :meth:`_connect_mesh` through ``_mesh_inbound``) and
        resume hellos from respawned peers (journal suffix replayed,
        link swapped in under the broadcast lock)."""
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed at teardown
            try:
                sock.settimeout(self.handshake_timeout)
                reader = FrameReader()
                hello = recv_message(sock, reader)
                if hello["type"] != "peer-hello":
                    raise ProtocolError(
                        f"expected peer-hello, got {hello['type']!r}")
                sock.settimeout(None)
                resume = hello.get("resume")
                if resume is None:
                    with self._mesh_cond:
                        self._mesh_inbound[hello["index"]] = (sock, reader)
                        self._mesh_cond.notify_all()
                else:
                    self._attach_resumed_peer(
                        hello["index"], resume, sock, reader)
            except (OSError, ConnectionError, ProtocolError) as exc:
                with self._mesh_cond:
                    self._accept_errors.append(exc)
                    self._mesh_cond.notify_all()
                try:
                    sock.close()
                except OSError:
                    pass

    def _attach_resumed_peer(self, j: int, resume: int,
                             sock: socket.socket,
                             reader: FrameReader) -> None:
        """Bring a respawned peer's fresh link up to date and go live.

        Holding ``_bcast_lock`` across replay + install means no live
        broadcast can slip between the journal suffix and the first
        frame sent post-install — the peer sees one gapless, in-order
        stream (its dedup horizon absorbs any overlap)."""
        with self._bcast_lock:
            if self._bcast_trimmed > resume:
                try:
                    sock.sendall(encode_frame(msg.resume_nack(
                        self.index, resume, self._bcast_trimmed)))
                finally:
                    sock.close()
                return
            for mark, frame in self._bcast_journal:
                if mark > resume:
                    sock.sendall(frame)
            old = self._peer_socks.get(j)
            self._peer_socks[j] = sock
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        self._start_peer_loop(j, sock, reader)

    def _connect_mesh(self, ports: list[int]) -> None:
        """Build the full worker mesh: accept from higher indices
        (via the lifetime acceptor), connect to lower ones (one duplex
        link per pair)."""
        expected = self.num_workers - 1 - self.index
        for j in range(self.index):
            sock = socket.create_connection(
                ("127.0.0.1", ports[j]), timeout=self.handshake_timeout)
            sock.settimeout(None)
            sock.sendall(encode_frame(msg.peer_hello(self.index)))
            self._peer_socks[j] = sock
            self._start_peer_loop(j, sock, FrameReader())
        deadline = time.monotonic() + self.handshake_timeout
        with self._mesh_cond:
            while len(self._mesh_inbound) < expected:
                if self._accept_errors:
                    raise self._accept_errors[0]
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"worker {self.index}: peer mesh incomplete "
                        f"({len(self._mesh_inbound)}/{expected} inbound "
                        f"connections)"
                    )
                self._mesh_cond.wait(remaining)
            inbound = dict(self._mesh_inbound)
            self._mesh_inbound.clear()
        for j, (sock, reader) in inbound.items():
            self._peer_socks[j] = sock
            self._start_peer_loop(j, sock, reader)

    # -- respawn ---------------------------------------------------------------

    def _handle_restore(self, message: dict) -> None:
        """Install shipped state and redial the mesh (respawn path).

        With a snapshot, the engine resumes bit-exactly at the snapshot
        barrier's ticket; without one (full-replay fallback) it starts
        fresh at ``base_mark`` and the router replays everything since.
        Either way every stream starts at the baseline — anything at or
        below it is already inside the restored state, so ``seen``
        starts there too and replayed peer broadcasts dedup cleanly.
        """
        config = RushMonConfig(**message["config"])
        base = message["base_mark"]
        document = message["snapshot"]
        with self._merge:
            self._build_engine(config)
            if document is not None:
                payload = wal.decode_shard_snapshot(document)
                self.collector.load_state(payload["collector"])
                wal.decode_detector_state(self.detector, payload["detector"])
                wal.decode_window_state(self.window, payload["window"])
                base = payload["high"]
            self._local_mark = base
            detached = set(message.get("detached", ()))
            for j, stream in self._peers.items():
                stream.mark = base
                stream.seen = base
                stream.detached = j in detached
        self._route_high = message["route_high"]
        with self._bcast_lock:
            self._bcast_journal.clear()
            self._bcast_trimmed = base
        for j, port in enumerate(message["ports"]):
            if j == self.index or j in detached:
                continue
            if port is None:
                # Peer is down too; when *it* restores it dials us (a
                # restored worker dials everyone), or the router detaches
                # it once its breaker trips.
                continue
            self._dial_peer(j, port, base)

    def _dial_peer(self, j: int, port: int, resume: int) -> None:
        last: BaseException | None = None
        for _ in range(self.redial_attempts):
            try:
                sock = socket.create_connection(
                    ("127.0.0.1", port), timeout=self.handshake_timeout)
                break
            except OSError as exc:
                last = exc
                time.sleep(self.redial_sleep)
        else:
            raise RuntimeError(
                f"worker {self.index}: cannot redial peer {j} on port "
                f"{port}: {last!r}"
            )
        sock.settimeout(None)
        sock.sendall(encode_frame(msg.peer_hello(self.index, resume=resume)))
        with self._bcast_lock:
            self._peer_socks[j] = sock
        self._start_peer_loop(j, sock, FrameReader())

    # -- lifecycle -------------------------------------------------------------

    def run(self, host: str, port: int) -> None:
        """Connect to the router, build (or rejoin) the mesh, serve
        until ``bye``."""
        self._listener = socket.create_server(("127.0.0.1", 0))
        threading.Thread(target=self._accept_loop, daemon=True,
                         name=f"accept-{self.index}").start()
        self._control = socket.create_connection(
            (host, port), timeout=self.handshake_timeout)
        try:
            self._control.sendall(encode_frame(msg.worker_hello(
                self.index, self._listener.getsockname()[1])))
            reader = FrameReader()
            self._control.settimeout(self.handshake_timeout)
            first = recv_message(self._control, reader)
            if first["type"] == "peers":
                self._connect_mesh(first["ports"])
                self._control.sendall(encode_frame(msg.ready(self.index)))
            elif first["type"] == "restore":
                self._handle_restore(first)
                self._control.sendall(encode_frame(
                    msg.restore_ok(self.index)))
            else:
                raise ProtocolError(
                    f"expected peers or restore, got {first['type']!r}")
            self._control.settimeout(None)
            self._serve(reader)
        except Exception as exc:
            try:
                self._send_control(encode_frame(msg.err(
                    f"worker {self.index}: {exc!r}")))
            except OSError:
                pass
            raise
        finally:
            try:
                self._listener.close()
            except OSError:
                pass
            for sock in self._peer_socks.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._control.close()

    def _serve(self, reader: FrameReader) -> None:
        handlers = {
            "route": self._handle_route,
            "flush": self._handle_flush,
            "reset": self._handle_reset,
            "ping": self._handle_ping,
            "snap-request": self._handle_snap_request,
            "detach": self._handle_detach,
        }
        while True:
            try:
                data = self._control.recv(_RECV)
            except OSError:
                return  # control link torn down by _fatal
            if not data:
                return  # router vanished; daemon exit
            for message in reader.feed(data):
                if message["type"] == "bye":
                    return
                handler = handlers.get(message["type"])
                if handler is None:
                    raise ProtocolError(
                        f"unexpected control message {message['type']!r}")
                handler(message)


def worker_main(index: int, num_workers: int, host: str, port: int,
                config_dict: dict,
                fault_specs: list[dict] | None = None) -> None:
    """Spawn entry point (must stay top-level importable for the
    ``spawn`` start method): build the engine and serve.

    ``fault_specs`` are plain-dict :class:`~repro.testing.faults.Fault`
    kwargs (picklable across the spawn boundary) armed inside the worker
    process — how the chaos suite reaches the ``cluster.exchange``
    injection point.
    """
    import os

    if os.environ.get("RUSHMON_WORKER_DUMP"):
        # Debug hook: dump every worker thread's stack after N seconds
        # (hung-cluster triage; harmless if the worker exits first).
        import faulthandler

        faulthandler.dump_traceback_later(
            float(os.environ["RUSHMON_WORKER_DUMP"]), exit=False)
    faults = None
    if fault_specs:
        faults = FaultInjector()
        for spec in fault_specs:
            faults.inject(Fault(**spec))
    ClusterWorker(index, num_workers, RushMonConfig(**config_dict),
                  faults=faults).run(host, port)
