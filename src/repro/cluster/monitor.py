"""The :class:`ClusterMonitor` facade: N worker processes, one monitor.

From the caller's side this is just another
:class:`~repro.core.api.AnomalyMonitor` — the same lifecycle verbs, the
same ``close_window()`` / ``reports`` / ``cumulative_estimates()``
surface the serial monitor and the threaded service expose, driven by
one :class:`~repro.core.config.RushMonConfig` (``num_workers``,
``cluster_batch``).  Behind the facade:

- **Routing.**  Every event gets a global, monotone *ticket*.
  Operations go to the worker owning their key
  (:func:`~repro.core.frontier.key_partition` — the same placement
  digest the in-process sharded collector uses); BUU begin/commit
  events are broadcast to every worker, because lifecycle state is
  graph-global.  Events buffer per worker and ship as ``route`` frames
  over the :mod:`repro.net.protocol` framing, with the net layer's
  sequence/cumulative-ack session per link (so worker delivery is
  effectively once and a bounded ack window provides backpressure).
- **Exchange.**  Workers forward the edges they derive to every peer
  (see :mod:`repro.cluster.worker`), so each worker's live graph is the
  full serial graph and cross-shard transactions close cycles exactly
  as they would serially.
- **Aggregation.**  ``close_window()`` runs a flush barrier and *sums*
  the per-worker raw window components — cycle counts, edge stats,
  operation counts, pattern tallies — then estimates once from the
  summed raw counts.  Theorem 5.2's estimator is linear in the counts
  and the shards are item-disjoint, so this equals the serial
  monitor's estimate exactly (bit-exactly at any ``sr`` with
  ``mob=False``; the ``sr=1`` differential pins it against the exact
  checkers).

Supervision: respawn-and-replay
-------------------------------

A real-time monitor that dies with one lost process is worse than none,
so worker death is a handled state, not an exception.  The router runs
a supervisor thread that detects a dead worker three ways — control
link EOF (the reader thread), ``Process.is_alive()`` going false (the
poll loop), or a missed heartbeat when ``ping_timeout`` is enabled —
and brings the shard back bit-exactly:

- **Journal-then-send.**  Every ``route`` and ``flush`` frame is
  appended to a per-link replay journal *before* it touches the wire,
  so a frame lost to a dying socket is never lost to the protocol.
  While a link is down, ingestion keeps journaling (and the cluster
  keeps accepting events); the supervisor replays the journal onto the
  respawned worker.  Route replay is idempotent (workers dedup on the
  session sequence) and replayed flush frames rebuild the worker's
  window state; their surplus replies are counted and discarded by the
  reader (``flush`` ordinals vs. barrier replies already consumed).
- **Snapshot shipping.**  Periodic snapshot rounds (``snapshot_interval``
  router flushes, or automatically at half the journal capacity)
  barrier every worker with ``snap-request`` and store each shard's
  CRC-guarded state (see :func:`repro.storage.wal.encode_shard_snapshot`).
  A verified snapshot empties that link's journal — the journal is
  exactly the suffix past the last verified snapshot, which is all a
  respawned worker needs after restoring it.  A corrupt snapshot
  (:mod:`repro.testing.faults` point ``cluster.snapshot``) is rejected
  and the previous one kept; with no verified snapshot at all the
  respawn falls back to a full journal replay from the reset baseline.
- **The circuit breaker.**  ``max_worker_restarts`` respawn attempts
  per shard; past it the shard is *failed*: survivors get ``detach``
  (its frozen watermark stops gating their merges), its routed frames
  are dropped (counted), and reports carry ``health="degraded"`` plus
  the missing shard indices in ``degraded_shards`` — the anomaly
  signal narrows instead of dying.  :meth:`reset` on a degraded
  cluster tears everything down and starts a fresh, healthy one.

The supervisor never takes the monitor's ingestion lock (a barrier
blocks holding it, and recovery is what unblocks the barrier); all
supervisor↔ingestion coordination goes through per-link condition
variables and a small supervisor-state lock.

Workers are daemon processes started lazily on first ingestion via the
``spawn`` start method (fork-safety: no inherited locks or sockets), so
constructing a ClusterMonitor is cheap and a never-used one spawns
nothing.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import socket
import threading
import time
from dataclasses import asdict
from typing import Iterable

from repro.cluster import messages as msg
from repro.cluster.worker import recv_message, worker_main
from repro.core.columnar import OpBatch
from repro.core.config import RushMonConfig
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.frontier import key_partition
from repro.core.types import (
    AnomalyReport,
    BuuId,
    CycleCounts,
    EdgeStats,
    Operation,
    OpType,
)
from repro.net.protocol import FrameReader, ProtocolError, encode_frame
from repro.obs.instrument import instrument_cluster_monitor
from repro.obs.metrics import MetricsRegistry
from repro.storage import wal
from repro.testing.faults import FaultInjector

__all__ = ["ClusterMonitor"]

_RECV = 1 << 16

#: Enum member -> wire tag, avoiding the (slow) enum ``.value``
#: descriptor in the per-operation routing loop.
_OP_WIRE = {member: member.value for member in OpType}

#: Routing is hottest on repeated keys; cache key -> owner up to this
#: many distinct keys (beyond it, compute without caching — placement
#: stays correct, only the lookup speed degrades).
_OWNER_CACHE_MAX = 1 << 20


def _column_list(column) -> list:
    """An :class:`~repro.core.columnar.OpBatch` column as a plain list
    (numpy ``tolist`` or the fallback list itself)."""
    return column if isinstance(column, list) else column.tolist()

#: Barrier-latency buckets (seconds): sub-millisecond to the timeout.
_BARRIER_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0,
                    60.0, 120.0)


class _WorkerLink:
    """The router's view of one worker incarnation chain.

    ``state`` is the supervisor's per-link machine — ``up`` (live),
    ``down`` (dead, awaiting the supervisor), ``respawning`` (the
    supervisor owns it) and ``failed`` (circuit breaker tripped;
    terminal until :meth:`ClusterMonitor.reset`).  ``gen`` increments
    per incarnation so a stale reader thread can never mark a fresh
    incarnation dead.  ``cond`` guards every mutable field below it;
    ``wlock`` serializes raw socket writes (ingestion, barriers, pings
    and replay may interleave frames otherwise).
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.sock: socket.socket | None = None
        self.reader = FrameReader()
        self.port: int | None = None
        self.wlock = threading.Lock()
        self.cond = threading.Condition()
        # -- guarded by cond -------------------------------------------
        self.state = "down"
        self.gen = 0
        self.send_seq = 0
        self.acked = 0
        self.down_reason: str | None = None
        #: Replay journal: ("route", seq, frame, None) and
        #: ("flush", None, frame, ordinal) entries in exact send order.
        #: Emptied whenever a snapshot is verified — the journal IS the
        #: suffix past the last restore point.
        self.journal: list[tuple] = []
        #: Session seq already covered when the journal was last
        #: emptied *without* a snapshot (start / reset baseline).
        self.journal_base_seq = 0
        #: Flush frames journaled / barrier replies consumed — their
        #: difference over the replayed suffix is how many replayed
        #: barrier replies the reader must discard.
        self.flush_seq = 0
        self.flush_replies_consumed = 0
        self.discard_replies = 0
        #: Last verified shard snapshot (encoded document) and the
        #: session seq it covers.
        self.snapshot: dict | None = None
        self.snapshot_route_high = 0
        self.last_ping = 0.0
        self.last_pong = 0.0
        # -- unguarded -------------------------------------------------
        self.replies: queue.Queue = queue.Queue()
        self.error: str | None = None


class ClusterMonitor:
    """Multi-process sharded monitor behind the AnomalyMonitor surface.

    >>> from repro.core.config import RushMonConfig
    >>> from repro.cluster import ClusterMonitor
    >>> mon = ClusterMonitor(RushMonConfig(sampling_rate=1, mob=False,
    ...                                    num_workers=2))

    feed it like any monitor, ``close_window()`` for a cluster-wide
    report, and ``stop()`` (or use it as a context manager) when done.

    Sized by ``config.num_workers``; ``config.cluster_batch`` bounds
    per-worker buffering between route flushes (every flush ships a
    frame to *every* worker — empty frames advance the cross-worker
    watermarks, so one hot shard cannot stall the merge on cold ones).
    Worker death is supervised (see the module docstring): the cluster
    respawns-and-replays up to ``config.max_worker_restarts`` times per
    shard and degrades instead of raising past that.
    """

    #: Route frames in flight per worker before ingestion blocks.  The
    #: product ``ack_window * cluster_batch`` bounds the backlog a
    #: barrier must drain while the router idles, so keep it modest.
    ack_window = 8
    #: Seconds allowed for worker spawn + mesh handshake.
    handshake_timeout = 60.0
    #: Seconds allowed for a flush/query/reset barrier — this must also
    #: cover a respawn-and-replay happening mid-barrier.
    barrier_timeout = 120.0
    #: Supervisor poll cadence for ``Process.is_alive()`` checks.
    poll_interval = 0.25
    #: Heartbeat cadence, and the pong-silence threshold that marks a
    #: worker dead.  ``ping_timeout=None`` (default) disables heartbeat
    #: *enforcement*: a worker legitimately blocks its control loop for
    #: up to its barrier drain timeout, so only enable this with
    #: workloads whose barriers are known-fast.
    ping_interval = 5.0
    ping_timeout: float | None = None

    def __init__(self, config: RushMonConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 faults: FaultInjector | None = None,
                 worker_fault_specs: list[dict] | None = None) -> None:
        self.config = config or RushMonConfig()
        if self.config.resample_interval is not None:
            raise ValueError(
                "resample_interval is serial-only: cluster workers cannot "
                "re-pick sampled items in lockstep (each worker sees only "
                "its own shard's operations)"
            )
        self.num_workers = self.config.num_workers
        n = self.num_workers
        self._mask = (n - 1) if n & (n - 1) == 0 else None
        self.reports: list[AnomalyReport] = []
        self._lock = threading.RLock()
        self._links: list[_WorkerLink] = []
        self._listener: socket.socket | None = None
        self._started = False
        self._stopped = False
        self._ticket = 0
        self._now = 0
        self._window_start = 0
        self._buffers: list[list] = [[] for _ in range(n)]
        self._owners: dict = {}
        #: columnar routing: interner identity + per-kid owner table.
        self._kid_owners: dict = {}
        self.ops_routed = 0
        self.lifecycle_broadcasts = 0
        self.router_flushes = 0
        #: Router-side fault injector (``cluster.route`` /
        #: ``cluster.snapshot`` points); ``worker_fault_specs`` are
        #: plain-dict Fault kwargs shipped across the spawn boundary to
        #: arm the in-worker ``cluster.exchange`` point.
        self.faults = faults
        self.worker_fault_specs = worker_fault_specs
        # -- supervision state (guarded by _sup_lock, not _lock: the
        # supervisor must never contend with a blocked barrier) --------
        self._sup_lock = threading.Lock()
        self._degraded: set[int] = set()
        self._restarts = [0] * n
        self._config_dict = asdict(self.config)
        self._base_mark = 0
        self._sup_thread: threading.Thread | None = None
        self._sup_stop: threading.Event | None = None
        self._sup_queue: queue.Queue | None = None
        self._last_snap_flush = 0
        self.worker_restarts_total = 0
        self.snapshots_shipped = 0
        self.snapshots_rejected = 0
        self.snapshot_rounds = 0
        self.replay_frames_total = 0
        self.frames_dropped_failed = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._barrier_hist = self.metrics.histogram(
            "rushmon_cluster_barrier_seconds",
            help="wall time of cluster flush barriers (includes any "
                 "respawn-and-replay a barrier rode out)",
            buckets=_BARRIER_BUCKETS,
        )
        instrument_cluster_monitor(self.metrics, self)

    # -- lifecycle -------------------------------------------------------------

    def _ensure_started_locked(self) -> None:
        if self._started:
            return
        if self._stopped:
            raise RuntimeError("ClusterMonitor is stopped")
        ctx = multiprocessing.get_context("spawn")
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(self.handshake_timeout)
        host, port = self._listener.getsockname()
        config_dict = asdict(self.config)
        self._links = [_WorkerLink(i) for i in range(self.num_workers)]
        self._sup_stop = threading.Event()
        self._sup_queue = queue.Queue()
        try:
            for link in self._links:
                proc = ctx.Process(
                    target=worker_main,
                    args=(link.index, self.num_workers, host, port,
                          config_dict, self.worker_fault_specs),
                    daemon=True,
                    name=f"rushmon-cluster-{link.index}",
                )
                proc.start()
                link.proc = proc
            for _ in range(self.num_workers):
                sock, _ = self._listener.accept()
                sock.settimeout(self.handshake_timeout)
                reader = FrameReader()
                hello = recv_message(sock, reader)
                if hello["type"] != "worker-hello":
                    raise ProtocolError(
                        f"expected worker-hello, got {hello['type']!r}")
                link = self._links[hello["index"]]
                link.sock, link.reader, link.port = sock, reader, hello["port"]
            frame = encode_frame(msg.peers([ln.port for ln in self._links]))
            for link in self._links:
                link.sock.sendall(frame)
            for link in self._links:
                reply = recv_message(link.sock, link.reader)
                if reply["type"] == "err":
                    raise RuntimeError(
                        f"cluster worker {link.index} failed during "
                        f"startup: {reply['message']}")
                if reply["type"] != "ready":
                    raise ProtocolError(
                        f"expected ready, got {reply['type']!r}")
                link.sock.settimeout(None)
        except Exception:
            self._teardown_locked()
            raise
        now = time.monotonic()
        for link in self._links:
            with link.cond:
                link.state = "up"
                link.last_ping = now
                link.last_pong = now
            self._start_reader(link, link.sock, link.reader, link.gen,
                               self._sup_queue)
        self._sup_thread = threading.Thread(
            target=self._supervise,
            args=(self._links, self._sup_stop, self._sup_queue),
            daemon=True, name="rushmon-cluster-supervisor",
        )
        self._sup_thread.start()
        self._started = True

    def _start_reader(self, link: _WorkerLink, sock: socket.socket,
                      reader: FrameReader, gen: int,
                      sup_queue: queue.Queue) -> None:
        threading.Thread(
            target=self._reader_loop, args=(link, sock, reader, gen,
                                            sup_queue),
            daemon=True,
            name=f"rushmon-cluster-reader-{link.index}.{gen}",
        ).start()

    def _reader_loop(self, link: _WorkerLink, sock: socket.socket,
                     reader: FrameReader, gen: int,
                     sup_queue: queue.Queue) -> None:
        while True:
            try:
                data = sock.recv(_RECV)
            except OSError:
                data = b""
            if not data:
                self._link_down(link, gen, "control connection closed",
                                sup_queue)
                return
            for message in reader.feed(data):
                kind = message["type"]
                if kind == "ack":
                    with link.cond:
                        if message["seq"] > link.acked:
                            link.acked = message["seq"]
                        link.cond.notify_all()
                elif kind == "err":
                    self._link_down(link, gen, message["message"], sup_queue)
                    return
                elif kind == "pong":
                    with link.cond:
                        link.last_pong = time.monotonic()
                else:
                    with link.cond:
                        if link.discard_replies > 0:
                            # Surplus reply to a *replayed* flush (the
                            # original was consumed by a barrier before
                            # the worker died); drop it.
                            link.discard_replies -= 1
                            continue
                    link.replies.put(message)

    def _link_down(self, link: _WorkerLink, gen: int, reason: str,
                   sup_queue: queue.Queue) -> None:
        """Transition a live link to ``down`` and wake the supervisor.
        Generation-guarded: a stale incarnation's reader noticing its
        own (already replaced) socket die is a no-op."""
        with link.cond:
            if gen != link.gen or link.state != "up":
                return
            link.state = "down"
            link.down_reason = reason
            link.cond.notify_all()
        sup_queue.put(link)

    def stop(self) -> None:
        """Shut the cluster down: orderly ``bye``, then join (and, past
        a grace period, terminate) the worker processes.  Idempotent; a
        stopped monitor refuses further ingestion."""
        with self._lock:
            self._stopped = True
            if not self._started:
                if self._listener is not None:
                    self._listener.close()
                    self._listener = None
                return
            self._started = False
            self._teardown_locked()

    def _teardown_locked(self) -> None:
        if self._sup_stop is not None:
            self._sup_stop.set()
        if self._sup_queue is not None:
            self._sup_queue.put(None)
        # Close the listener before joining the supervisor: a respawn
        # blocked in accept() aborts immediately instead of timing out.
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        frame = encode_frame(msg.bye())
        for link in self._links:
            with link.cond:
                sock = link.sock
                live = link.state == "up"
            if sock is not None and live:
                try:
                    with link.wlock:
                        sock.sendall(frame)
                except OSError:
                    pass
        if self._sup_thread is not None:
            self._sup_thread.join(timeout=5.0)
            self._sup_thread = None
        for link in self._links:
            if link.proc is not None:
                link.proc.join(timeout=5.0)
                if link.proc.is_alive():
                    link.proc.terminate()
                    link.proc.join(timeout=1.0)
            if link.sock is not None:
                try:
                    link.sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ClusterMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- supervision -----------------------------------------------------------

    def _supervise(self, links: list[_WorkerLink], stop: threading.Event,
                   sup_queue: queue.Queue) -> None:
        """The supervisor loop: respawn links the readers report dead,
        and poll the rest for silent deaths."""
        while not stop.is_set():
            try:
                item = sup_queue.get(timeout=self.poll_interval)
            except queue.Empty:
                item = None
            if stop.is_set():
                return
            if item is not None:
                self._respawn(item, stop)
                continue
            self._poll_links(links, sup_queue)

    def _poll_links(self, links: list[_WorkerLink],
                    sup_queue: queue.Queue) -> None:
        now = time.monotonic()
        for link in links:
            with link.cond:
                if link.state != "up":
                    continue
                proc, gen, sock = link.proc, link.gen, link.sock
                last_ping, last_pong = link.last_ping, link.last_pong
            if proc is not None and not proc.is_alive():
                self._link_down(link, gen, "worker process exited",
                                sup_queue)
                continue
            if self.ping_timeout is None:
                continue
            if now - last_ping >= self.ping_interval:
                with link.cond:
                    link.last_ping = now
                try:
                    with link.wlock:
                        sock.sendall(encode_frame(msg.ping()))
                except OSError:
                    self._link_down(link, gen, "heartbeat send failed",
                                    sup_queue)
                    continue
            if now - last_pong > self.ping_timeout:
                self._link_down(
                    link, gen,
                    f"no heartbeat reply within {self.ping_timeout}s",
                    sup_queue)

    def _respawn(self, link: _WorkerLink, stop: threading.Event) -> None:
        """Bring one dead link back, retrying until it sticks or the
        circuit breaker trips."""
        while not stop.is_set():
            with link.cond:
                if link.state != "down":
                    return
                link.state = "respawning"
                reason = link.down_reason or "unknown"
            with self._sup_lock:
                if self._restarts[link.index] >= self.config.max_worker_restarts:
                    tripped = True
                else:
                    self._restarts[link.index] += 1
                    self.worker_restarts_total += 1
                    tripped = False
            if tripped:
                self._fail_link(
                    link,
                    f"restart budget exhausted "
                    f"({self.config.max_worker_restarts}); last failure: "
                    f"{reason}")
                return
            try:
                self._spawn_and_restore(link)
                return
            except Exception as exc:
                if stop.is_set():
                    return
                with link.cond:
                    link.state = "down"
                    link.down_reason = f"respawn attempt failed: {exc!r}"

    def _spawn_and_restore(self, link: _WorkerLink) -> None:
        """One respawn attempt: spawn, handshake, restore (snapshot or
        fresh-at-baseline), replay the journal suffix, go live."""
        old_sock, old_proc = link.sock, link.proc
        if old_sock is not None:
            try:
                old_sock.close()
            except OSError:
                pass
        if old_proc is not None:
            if old_proc.is_alive():
                old_proc.terminate()
            old_proc.join(timeout=5.0)
        with self._sup_lock:
            config_dict = dict(self._config_dict)
            base_mark = self._base_mark
            detached = sorted(self._degraded)
        listener = self._listener
        if listener is None:
            raise RuntimeError("cluster is shutting down")
        host, port = listener.getsockname()
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(
            target=worker_main,
            args=(link.index, self.num_workers, host, port, config_dict,
                  self.worker_fault_specs),
            daemon=True,
            name=f"rushmon-cluster-{link.index}",
        )
        proc.start()
        link.proc = proc
        sock = None
        try:
            sock, _ = listener.accept()
            sock.settimeout(self.handshake_timeout)
            reader = FrameReader()
            hello = recv_message(sock, reader)
            if hello["type"] != "worker-hello" or hello["index"] != link.index:
                raise ProtocolError(f"unexpected respawn hello {hello!r}")
            ports: list = []
            for other in self._links:
                if other is link:
                    ports.append(hello["port"])
                    continue
                with other.cond:
                    ports.append(
                        other.port if other.state == "up" else None)
            with link.cond:
                snapshot = link.snapshot
                route_high = (link.snapshot_route_high
                              if snapshot is not None
                              else link.journal_base_seq)
            sock.sendall(encode_frame(msg.restore(
                config_dict, ports, route_high, base_mark, snapshot,
                detached)))
            reply = recv_message(sock, reader)
            if reply["type"] == "err":
                raise RuntimeError(
                    f"respawned worker {link.index} failed to restore: "
                    f"{reply['message']}")
            if reply["type"] != "restore-ok":
                raise ProtocolError(
                    f"expected restore-ok, got {reply['type']!r}")
            sock.settimeout(None)
        except Exception:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            raise
        with link.cond:
            link.sock = sock
            link.reader = reader
            link.port = hello["port"]
            link.gen += 1
            now = time.monotonic()
            link.last_ping = now
            link.last_pong = now
            gen = link.gen
        self._replay_link(link, gen)

    def _replay_link(self, link: _WorkerLink, gen: int) -> None:
        """Replay the journal suffix onto a restored link, then flip it
        to ``up``.  The reader starts first (the worker's acks and any
        genuine barrier replies must drain during replay); the state
        flip happens under the link condition after the journal is
        confirmed drained, so an ingestion append always lands either
        in the replayed range or after the link sends for itself."""
        with link.cond:
            consumed = link.flush_replies_consumed
            link.discard_replies = sum(
                1 for entry in link.journal
                if entry[0] == "flush" and entry[3] <= consumed)
            sock = link.sock
            reader = link.reader
        self._start_reader(link, sock, reader, gen, self._sup_queue)
        sent = 0
        while True:
            with link.cond:
                if sent >= len(link.journal):
                    link.state = "up"
                    link.down_reason = None
                    link.cond.notify_all()
                    break
                batch = list(link.journal[sent:])
            for entry in batch:
                with link.wlock:
                    sock.sendall(entry[2])
                sent += 1
        self.replay_frames_total += sent

    def _fail_link(self, link: _WorkerLink, reason: str) -> None:
        """Trip the circuit breaker: the shard is gone for good (until
        a reset).  Survivors stop gating their merges on it, waiters
        are released, and reports degrade instead of raising."""
        with self._sup_lock:
            self._degraded.add(link.index)
        with link.cond:
            link.state = "failed"
            link.error = reason
            link.down_reason = reason
            link.journal.clear()
            link.snapshot = None
            link.cond.notify_all()
        # Release a barrier blocked on this shard's reply.
        link.replies.put({"type": "failed"})
        frame = encode_frame(msg.detach(link.index))
        for other in self._links:
            if other is link:
                continue
            with other.cond:
                live = other.state == "up"
                sock = other.sock
            if live:
                try:
                    with other.wlock:
                        sock.sendall(frame)
                except OSError:
                    pass
        if link.proc is not None:
            if link.proc.is_alive():
                link.proc.terminate()
            link.proc.join(timeout=5.0)
        if link.sock is not None:
            try:
                link.sock.close()
            except OSError:
                pass

    @property
    def degraded_shards(self) -> tuple:
        """Indices of shards whose circuit breaker has tripped."""
        with self._sup_lock:
            return tuple(sorted(self._degraded))

    def shard_health(self) -> list[dict]:
        """Per-shard supervisor view (for live displays): link state
        and consumed restart budget."""
        with self._sup_lock:
            restarts = list(self._restarts)
        out = []
        for link in self._links:
            with link.cond:
                out.append({
                    "index": link.index,
                    "state": link.state,
                    "restarts": restarts[link.index],
                })
        return out

    # -- ingestion (MonitorListener) -------------------------------------------

    def _time(self, explicit: int | None) -> int:
        if explicit is not None:
            self._now = max(self._now, explicit)
            return explicit
        return self._now

    def _next_ticket(self) -> int:
        self._ticket += 1
        return self._ticket

    def begin_buu(self, buu: BuuId, start_time: int | None = None) -> None:
        with self._lock:
            self._ensure_started_locked()
            when = self._time(start_time)
            ticket = self._next_ticket()
            for buffer in self._buffers:
                buffer.append(msg.wire_begin(buu, when, ticket))
            self.lifecycle_broadcasts += 1
            self._route_if_full_locked()

    def commit_buu(self, buu: BuuId, commit_time: int | None = None) -> None:
        with self._lock:
            self._ensure_started_locked()
            when = self._time(commit_time)
            ticket = self._next_ticket()
            for buffer in self._buffers:
                buffer.append(msg.wire_commit(buu, when, ticket))
            self.lifecycle_broadcasts += 1
            self._route_if_full_locked()

    def _owner_of(self, key) -> int:
        owner = self._owners.get(key)
        if owner is None:
            owner = key_partition(key, self.num_workers, self._mask)
            if len(self._owners) < _OWNER_CACHE_MAX:
                self._owners[key] = owner
        return owner

    def on_operation(self, op: Operation) -> None:
        with self._lock:
            self._ensure_started_locked()
            if op.seq > self._now:
                self._now = op.seq
            ticket = self._next_ticket()
            self._buffers[self._owner_of(op.key)].append(
                [_OP_WIRE[op.op], op.buu, op.key, op.seq, ticket])
            self.ops_routed += 1
            self._route_if_full_locked()

    def on_operations(self, ops: Iterable[Operation]) -> None:
        if isinstance(ops, OpBatch):
            return self.on_op_batch(ops)
        with self._lock:
            self._ensure_started_locked()
            buffers = self._buffers
            owners = self._owners
            n, mask = self.num_workers, self._mask
            op_wire = _OP_WIRE
            now = self._now
            ticket = self._ticket
            count = 0
            for op in ops:
                seq = op.seq
                if seq > now:
                    now = seq
                ticket += 1
                key = op.key
                owner = owners.get(key)
                if owner is None:
                    owner = key_partition(key, n, mask)
                    if len(owners) < _OWNER_CACHE_MAX:
                        owners[key] = owner
                buffers[owner].append(
                    [op_wire[op.op], op.buu, key, seq, ticket])
                count += 1
            self._ticket = ticket
            self._now = now
            self.ops_routed += count
            self._route_if_full_locked()

    def on_op_batch(self, batch: OpBatch) -> None:
        """Columnar fast path of :meth:`on_operations`.

        Routes an :class:`~repro.core.columnar.OpBatch` without
        materializing per-op ``Operation`` objects: the owning worker is
        computed once per interned key id (a dense per-kid table shared
        across batches), rows gather their owner through it, and wire
        records are emitted straight from the batch's columns.  Tickets,
        buffer contents and route frames are identical to routing the
        same operations through the per-op path.
        """
        with self._lock:
            self._ensure_started_locked()
            n = len(batch)
            if not n:
                return
            interner = batch.interner
            cache = self._kid_owners
            owners = cache.get("owners")
            if cache.get("interner") is not interner or owners is None:
                cache.clear()
                cache["interner"] = interner
                owners = cache["owners"] = []
            if len(owners) < len(interner):
                key_of = interner.key_of
                workers, mask = self.num_workers, self._mask
                owners.extend(
                    key_partition(key_of(kid), workers, mask)
                    for kid in range(len(owners), len(interner)))
            kids = _column_list(batch.kid)
            codes = _column_list(batch.op)
            buus = _column_list(batch.buu)
            seqs = _column_list(batch.seq)
            keys = interner._keys
            buffers = self._buffers
            ticket = self._ticket
            rw = ("r", "w")
            for code, buu, kid, seq, owner in zip(
                    codes, buus, kids, seqs,
                    map(owners.__getitem__, kids)):
                ticket += 1
                buffers[owner].append([rw[code], buu, keys[kid], seq, ticket])
            self._ticket = ticket
            high = batch.max_seq()
            if high > self._now:
                self._now = high
            self.ops_routed += n
            self._route_if_full_locked()

    # -- routing ---------------------------------------------------------------

    def _route_if_full_locked(self) -> None:
        if max(len(b) for b in self._buffers) >= self.config.cluster_batch:
            self._flush_buffers_locked()
            self._maybe_snapshot_locked()

    def _flush_buffers_locked(self) -> None:
        """Ship every per-worker buffer as one route frame.  All-or-none:
        even an empty buffer ships (an empty frame carries the ticket
        high-water mark, which peers need to advance the merge)."""
        if all(not b for b in self._buffers):
            return
        for link, events in zip(self._links, self._buffers):
            self._send_route(link, events)
        self._buffers = [[] for _ in range(self.num_workers)]
        self.router_flushes += 1

    def _send_route(self, link: _WorkerLink, events: list) -> None:
        """Journal-then-send one route frame.

        A ``failed`` shard's frames are dropped (counted — the honest
        accounting of degraded mode).  A ``down``/``respawning`` link
        journals without sending: the supervisor's replay delivers.
        Backpressure applies only to live links (a down link's acks
        are frozen; its backlog is bounded by the respawn, which never
        waits on this lock)."""
        if self.faults is not None:
            fault = self.faults.fire("cluster.route")
            if fault is not None:
                self._apply_route_fault(link, fault)
        with link.cond:
            if link.state == "failed":
                self.frames_dropped_failed += 1
                return
            if link.state == "up" and \
                    link.send_seq - link.acked >= self.ack_window:
                deadline = time.monotonic() + self.barrier_timeout
                while (link.state == "up"
                       and link.send_seq - link.acked >= self.ack_window):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RuntimeError(
                            f"cluster worker {link.index} stopped acking "
                            f"route frames (backpressure timeout)")
                    link.cond.wait(remaining)
                if link.state == "failed":
                    self.frames_dropped_failed += 1
                    return
            link.send_seq += 1
            frame = encode_frame(
                msg.route(link.send_seq, self._ticket, events))
            link.journal.append(("route", link.send_seq, frame, None))
            live = link.state == "up"
            gen = link.gen
            sock = link.sock
        if live:
            try:
                with link.wlock:
                    sock.sendall(frame)
            except OSError:
                # Journaled before the send: the replay covers it.
                self._link_down(link, gen, "route send failed",
                                self._sup_queue)

    def _apply_route_fault(self, link: _WorkerLink, fault) -> None:
        if fault.kind == "kill_worker":
            with link.cond:
                proc = link.proc
            if proc is not None and proc.pid is not None and proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)
        elif fault.kind == "delay":
            time.sleep(fault.delay)
        elif fault.kind == "exception":
            raise fault.exc_factory()

    # -- snapshot rounds -------------------------------------------------------

    def _maybe_snapshot_locked(self) -> None:
        """Run a snapshot round when due: every ``snapshot_interval``
        router flushes if configured, else whenever some link's journal
        reaches half its capacity (journal pressure — the bound that
        keeps 'bounded per-shard replay journal' honest)."""
        interval = self.config.snapshot_interval
        if interval is not None:
            due = self.router_flushes - self._last_snap_flush >= interval
        else:
            threshold = max(1, self.config.replay_journal_capacity // 2)
            due = any(len(link.journal) >= threshold
                      for link in self._links)
        if due:
            self._snapshot_round_locked()

    def _snapshot_round_locked(self) -> None:
        """Barrier every live worker with ``snap-request`` and store the
        verified snapshots.  Aborted (retried at the next flush) while
        any shard is mid-respawn; a shard dying mid-round just keeps
        its previous snapshot."""
        high = self._ticket
        targets = []
        for link in self._links:
            with link.cond:
                if link.state == "failed":
                    continue
                if link.state != "up":
                    return  # respawn in flight; retry later
            targets.append(link)
        if not targets:
            return
        self._last_snap_flush = self.router_flushes
        self.snapshot_rounds += 1
        frame = encode_frame(msg.snap_request(high))
        gens = {}
        for link in targets:
            with link.cond:
                gens[link.index] = link.gen
                sock = link.sock
            try:
                with link.wlock:
                    sock.sendall(frame)
            except OSError:
                self._link_down(link, gens[link.index],
                                "snap-request send failed", self._sup_queue)
                return
        for link in targets:
            reply = self._await_snap(link, gens[link.index])
            if reply is None:
                continue  # died mid-round; previous snapshot stands
            document = reply["document"]
            if self.faults is not None:
                fault = self.faults.fire("cluster.snapshot")
                if fault is not None and fault.kind == "corrupt":
                    document = dict(document)
                    document["crc"] = document.get("crc", 0) ^ 1
            try:
                payload = wal.decode_shard_snapshot(document)
            except wal.CheckpointError:
                self.snapshots_rejected += 1
                continue  # keep the previous verified snapshot
            with link.cond:
                if payload["route_high"] != link.send_seq:
                    # Defensive: a snapshot that does not cover the
                    # full session prefix must never become a restore
                    # point (replay would double-apply).
                    self.snapshots_rejected += 1
                    continue
                link.snapshot = document
                link.snapshot_route_high = payload["route_high"]
                # The journal was exactly the frames this snapshot now
                # covers (the round runs under the ingestion lock, so
                # nothing was appended since the drain).
                link.journal.clear()
            self.snapshots_shipped += 1

    def _await_snap(self, link: _WorkerLink, gen: int) -> dict | None:
        deadline = time.monotonic() + self.barrier_timeout
        while True:
            with link.cond:
                if link.state != "up" or link.gen != gen:
                    return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                reply = link.replies.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                continue
            if reply.get("type") == "snap":
                return reply
            if reply.get("type") == "failed":
                return None
            # Anything else is out of protocol during a locked round.
            raise ProtocolError(
                f"expected snap from worker {link.index}, got "
                f"{reply.get('type')!r}")

    # -- barriers --------------------------------------------------------------

    def _barrier(self, window: bool, end: int = 0) -> list[tuple[int, dict]]:
        """Flush-and-wait on every non-failed worker; returns
        ``(index, reply)`` pairs in worker order (failed shards are
        skipped — degraded mode).  Callers hold the lock and have
        flushed buffers.  Flush frames are journaled like routes, so a
        worker dying mid-barrier re-executes the flush after its
        respawn and the barrier rides the recovery out instead of
        raising."""
        frame = encode_frame(msg.flush(self._ticket, window, end))
        start = time.monotonic()
        waiting = []
        for link in self._links:
            with link.cond:
                if link.state == "failed":
                    continue
                link.flush_seq += 1
                link.journal.append(("flush", None, frame, link.flush_seq))
                live = link.state == "up"
                gen = link.gen
                sock = link.sock
            if live:
                try:
                    with link.wlock:
                        sock.sendall(frame)
                except OSError:
                    self._link_down(link, gen, "flush send failed",
                                    self._sup_queue)
            waiting.append(link)
        replies = []
        for link in waiting:
            reply = self._await_reply(link)
            if reply is None:
                continue  # breaker tripped mid-barrier
            with link.cond:
                link.flush_replies_consumed += 1
            replies.append((link.index, reply))
        self._barrier_hist.observe(time.monotonic() - start)
        return replies

    def _await_reply(self, link: _WorkerLink) -> dict | None:
        """One barrier reply from ``link``, patient across a
        respawn-and-replay; ``None`` once the link is failed."""
        deadline = time.monotonic() + self.barrier_timeout
        while True:
            with link.cond:
                if link.state == "failed":
                    return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"cluster worker {link.index} did not reach the "
                    f"barrier within {self.barrier_timeout}s")
            try:
                reply = link.replies.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                continue
            if reply.get("type") == "failed":
                return None
            return reply

    # -- reporting (AnomalyMonitor) --------------------------------------------

    @property
    def sampling_probability(self) -> float:
        return 1.0 / self.config.sampling_rate

    def close_window(self, now: int | None = None) -> AnomalyReport:
        """Close the cluster-wide window: barrier every worker at the
        current ticket, sum their raw window components, estimate once
        from the sum (Theorem 5.2 linearity over item-disjoint shards).
        With breaker-tripped shards the report carries
        ``health="degraded"`` and names them in ``degraded_shards`` —
        their keys' counts are missing, everything else is live."""
        with self._lock:
            self._ensure_started_locked()
            end = self._time(now)
            self._flush_buffers_locked()
            replies = self._barrier(window=True, end=end)
            raw = CycleCounts()
            edges = EdgeStats()
            operations = 0
            patterns: dict = {}
            for _, reply in replies:
                raw.add(CycleCounts(**reply["raw"]))
                edges.add(EdgeStats(**reply["edges"]))
                operations += reply["ops"]
                for pattern, count in reply["patterns"].items():
                    patterns[pattern] = patterns.get(pattern, 0) + count
            degraded = self.degraded_shards
            p = self.sampling_probability
            report = AnomalyReport(
                window_start=self._window_start,
                window_end=end,
                estimated_2=estimate_two_cycles(raw, p),
                estimated_3=estimate_three_cycles(raw, p),
                raw=raw,
                edges=edges,
                operations=operations,
                patterns=patterns,
                health="degraded" if degraded else "ok",
                degraded_shards=degraded,
            )
            self._window_start = end
            self.reports.append(report)
            return report

    def latest_report(self) -> AnomalyReport | None:
        """The most recently closed window's report (``None`` if no
        window has been closed yet)."""
        with self._lock:
            return self.reports[-1] if self.reports else None

    def counts(self) -> CycleCounts:
        """Cluster-wide cumulative detector counts (a ``synced`` barrier
        that leaves the current window open; failed shards' counts are
        missing — degraded mode)."""
        with self._lock:
            self._ensure_started_locked()
            self._flush_buffers_locked()
            total = CycleCounts()
            for _, reply in self._barrier(window=False):
                total.add(CycleCounts(**reply["counts"]))
            return total

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything observed since construction
        (or the last :meth:`reset`)."""
        total = self.counts()
        p = self.sampling_probability
        return (estimate_two_cycles(total, p),
                estimate_three_cycles(total, p))

    # -- harness hooks ---------------------------------------------------------

    def reset(self, config: RushMonConfig) -> None:
        """Rebuild every worker's engine with ``config`` — differential
        and bench harnesses reuse one spawned cluster across runs,
        amortizing the process-spawn cost.

        On a *healthy* cluster this is in-place: tickets and watermarks
        stay monotone, replay journals and snapshots are cleared (the
        reset is the new replay baseline).  On a cluster with any dead
        or breaker-tripped shard it is a full restart — workers torn
        down and respawned lazily, restart budgets and degraded state
        wiped — which is how a degraded cluster is *recovered*."""
        with self._lock:
            if config.num_workers != self.num_workers:
                raise ValueError(
                    f"reset cannot change num_workers "
                    f"({self.num_workers} -> {config.num_workers}); "
                    f"start a new ClusterMonitor instead")
            if config.resample_interval is not None:
                raise ValueError("resample_interval is serial-only")
            if self._started:
                healthy = True
                for link in self._links:
                    with link.cond:
                        if link.state != "up":
                            healthy = False
                            break
                if healthy:
                    self._reset_in_place_locked(config)
                else:
                    self._teardown_locked()
                    self._started = False
                    self._links = []
                    self._ticket = 0
            self.config = config
            with self._sup_lock:
                self._config_dict = asdict(config)
                if not self._started:
                    self._base_mark = 0
                    self._degraded = set()
                    self._restarts = [0] * self.num_workers
            self.reports = []
            self._now = 0
            self._window_start = 0
            self._buffers = [[] for _ in range(self.num_workers)]

    def _reset_in_place_locked(self, config: RushMonConfig) -> None:
        self._flush_buffers_locked()
        self._barrier(window=False)
        # Publish the new config/baseline before the workers rebuild, so
        # a respawn racing the reset restores the post-reset world.
        with self._sup_lock:
            self._config_dict = asdict(config)
            self._base_mark = self._ticket
        frame = encode_frame(msg.reset(asdict(config)))
        for link in self._links:
            with link.wlock:
                link.sock.sendall(frame)
        for link in self._links:
            reply = self._await_reply(link)
            if reply is None or reply["type"] != "reset-ok":
                raise ProtocolError(
                    f"expected reset-ok, got "
                    f"{reply['type'] if reply else 'failed link'!r}")
        for link in self._links:
            with link.cond:
                link.journal.clear()
                link.journal_base_seq = link.send_seq
                link.snapshot = None
                link.snapshot_route_high = 0
