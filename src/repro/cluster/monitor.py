"""The :class:`ClusterMonitor` facade: N worker processes, one monitor.

From the caller's side this is just another
:class:`~repro.core.api.AnomalyMonitor` — the same lifecycle verbs, the
same ``close_window()`` / ``reports`` / ``cumulative_estimates()``
surface the serial monitor and the threaded service expose, driven by
one :class:`~repro.core.config.RushMonConfig` (``num_workers``,
``cluster_batch``).  Behind the facade:

- **Routing.**  Every event gets a global, monotone *ticket*.
  Operations go to the worker owning their key
  (:func:`~repro.core.frontier.key_partition` — the same placement
  digest the in-process sharded collector uses); BUU begin/commit
  events are broadcast to every worker, because lifecycle state is
  graph-global.  Events buffer per worker and ship as ``route`` frames
  over the :mod:`repro.net.protocol` framing, with the net layer's
  sequence/cumulative-ack session per link (so worker delivery is
  effectively once and a bounded ack window provides backpressure).
- **Exchange.**  Workers forward the edges they derive to every peer
  (see :mod:`repro.cluster.worker`), so each worker's live graph is the
  full serial graph and cross-shard transactions close cycles exactly
  as they would serially.
- **Aggregation.**  ``close_window()`` runs a flush barrier and *sums*
  the per-worker raw window components — cycle counts, edge stats,
  operation counts, pattern tallies — then estimates once from the
  summed raw counts.  Theorem 5.2's estimator is linear in the counts
  and the shards are item-disjoint, so this equals the serial
  monitor's estimate exactly (bit-exactly at any ``sr`` with
  ``mob=False``; the ``sr=1`` differential pins it against the exact
  checkers).

Workers are daemon processes started lazily on first ingestion via the
``spawn`` start method (fork-safety: no inherited locks or sockets), so
constructing a ClusterMonitor is cheap and a never-used one spawns
nothing.
"""

from __future__ import annotations

import multiprocessing
import queue
import socket
import threading
import time
from dataclasses import asdict
from typing import Iterable

from repro.cluster import messages as msg
from repro.cluster.worker import recv_message, worker_main
from repro.core.config import RushMonConfig
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.frontier import key_partition
from repro.core.types import (
    AnomalyReport,
    BuuId,
    CycleCounts,
    EdgeStats,
    Operation,
    OpType,
)
from repro.net.protocol import FrameReader, ProtocolError, encode_frame
from repro.obs.instrument import instrument_cluster_monitor
from repro.obs.metrics import MetricsRegistry

__all__ = ["ClusterMonitor"]

_RECV = 1 << 16

#: Enum member -> wire tag, avoiding the (slow) enum ``.value``
#: descriptor in the per-operation routing loop.
_OP_WIRE = {member: member.value for member in OpType}

#: Routing is hottest on repeated keys; cache key -> owner up to this
#: many distinct keys (beyond it, compute without caching — placement
#: stays correct, only the lookup speed degrades).
_OWNER_CACHE_MAX = 1 << 20


class _WorkerLink:
    """The router's view of one worker: process, control socket,
    session counters and the reply queue its reader thread fills."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.sock: socket.socket | None = None
        self.reader = FrameReader()
        self.port: int | None = None
        self.send_seq = 0
        self.acked = 0
        self.cond = threading.Condition()
        self.replies: queue.Queue = queue.Queue()
        self.error: str | None = None
        self.thread: threading.Thread | None = None


class ClusterMonitor:
    """Multi-process sharded monitor behind the AnomalyMonitor surface.

    >>> from repro.core.config import RushMonConfig
    >>> from repro.cluster import ClusterMonitor
    >>> mon = ClusterMonitor(RushMonConfig(sampling_rate=1, mob=False,
    ...                                    num_workers=2))

    feed it like any monitor, ``close_window()`` for a cluster-wide
    report, and ``stop()`` (or use it as a context manager) when done.

    Sized by ``config.num_workers``; ``config.cluster_batch`` bounds
    per-worker buffering between route flushes (every flush ships a
    frame to *every* worker — empty frames advance the cross-worker
    watermarks, so one hot shard cannot stall the merge on cold ones).
    """

    #: Route frames in flight per worker before ingestion blocks.  The
    #: product ``ack_window * cluster_batch`` bounds the backlog a
    #: barrier must drain while the router idles, so keep it modest.
    ack_window = 8
    #: Seconds allowed for worker spawn + mesh handshake.
    handshake_timeout = 60.0
    #: Seconds allowed for a flush/query/reset barrier.
    barrier_timeout = 120.0

    def __init__(self, config: RushMonConfig | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config or RushMonConfig()
        if self.config.resample_interval is not None:
            raise ValueError(
                "resample_interval is serial-only: cluster workers cannot "
                "re-pick sampled items in lockstep (each worker sees only "
                "its own shard's operations)"
            )
        self.num_workers = self.config.num_workers
        n = self.num_workers
        self._mask = (n - 1) if n & (n - 1) == 0 else None
        self.reports: list[AnomalyReport] = []
        self._lock = threading.RLock()
        self._links: list[_WorkerLink] = []
        self._listener: socket.socket | None = None
        self._started = False
        self._stopped = False
        self._ticket = 0
        self._now = 0
        self._window_start = 0
        self._buffers: list[list] = [[] for _ in range(n)]
        self._owners: dict = {}
        self.ops_routed = 0
        self.lifecycle_broadcasts = 0
        self.router_flushes = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        instrument_cluster_monitor(self.metrics, self)

    # -- lifecycle -------------------------------------------------------------

    def _ensure_started_locked(self) -> None:
        if self._started:
            return
        if self._stopped:
            raise RuntimeError("ClusterMonitor is stopped")
        ctx = multiprocessing.get_context("spawn")
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(self.handshake_timeout)
        host, port = self._listener.getsockname()
        config_dict = asdict(self.config)
        self._links = [_WorkerLink(i) for i in range(self.num_workers)]
        try:
            for link in self._links:
                proc = ctx.Process(
                    target=worker_main,
                    args=(link.index, self.num_workers, host, port,
                          config_dict),
                    daemon=True,
                    name=f"rushmon-cluster-{link.index}",
                )
                proc.start()
                link.proc = proc
            for _ in range(self.num_workers):
                sock, _ = self._listener.accept()
                sock.settimeout(self.handshake_timeout)
                reader = FrameReader()
                hello = recv_message(sock, reader)
                if hello["type"] != "worker-hello":
                    raise ProtocolError(
                        f"expected worker-hello, got {hello['type']!r}")
                link = self._links[hello["index"]]
                link.sock, link.reader, link.port = sock, reader, hello["port"]
            frame = encode_frame(msg.peers([ln.port for ln in self._links]))
            for link in self._links:
                link.sock.sendall(frame)
            for link in self._links:
                reply = recv_message(link.sock, link.reader)
                if reply["type"] == "err":
                    raise RuntimeError(
                        f"cluster worker {link.index} failed during "
                        f"startup: {reply['message']}")
                if reply["type"] != "ready":
                    raise ProtocolError(
                        f"expected ready, got {reply['type']!r}")
                link.sock.settimeout(None)
        except Exception:
            self._teardown_locked()
            raise
        for link in self._links:
            link.thread = threading.Thread(
                target=self._reader_loop, args=(link,), daemon=True,
                name=f"rushmon-cluster-reader-{link.index}",
            )
            link.thread.start()
        self._started = True

    def _reader_loop(self, link: _WorkerLink) -> None:
        sock = link.sock
        while True:
            try:
                data = sock.recv(_RECV)
            except OSError:
                data = b""
            if not data:
                self._mark_dead(link, "control connection closed")
                return
            for message in link.reader.feed(data):
                kind = message["type"]
                if kind == "ack":
                    with link.cond:
                        if message["seq"] > link.acked:
                            link.acked = message["seq"]
                        link.cond.notify_all()
                elif kind == "err":
                    self._mark_dead(link, message["message"])
                else:
                    link.replies.put(message)

    def _mark_dead(self, link: _WorkerLink, reason: str) -> None:
        if link.error is None:
            link.error = reason
        # Wake both kinds of waiters: barrier reply reads and
        # backpressured route sends.
        link.replies.put({"type": "err", "message": link.error})
        with link.cond:
            link.cond.notify_all()

    def stop(self) -> None:
        """Shut the cluster down: orderly ``bye``, then join (and, past
        a grace period, terminate) the worker processes.  Idempotent; a
        stopped monitor refuses further ingestion."""
        with self._lock:
            self._stopped = True
            if not self._started:
                if self._listener is not None:
                    self._listener.close()
                    self._listener = None
                return
            self._started = False
            self._teardown_locked()

    def _teardown_locked(self) -> None:
        frame = encode_frame(msg.bye())
        for link in self._links:
            if link.sock is not None:
                try:
                    link.sock.sendall(frame)
                except OSError:
                    pass
        for link in self._links:
            if link.proc is not None:
                link.proc.join(timeout=5.0)
                if link.proc.is_alive():
                    link.proc.terminate()
                    link.proc.join(timeout=1.0)
            if link.sock is not None:
                try:
                    link.sock.close()
                except OSError:
                    pass
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def __enter__(self) -> "ClusterMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- ingestion (MonitorListener) -------------------------------------------

    def _time(self, explicit: int | None) -> int:
        if explicit is not None:
            self._now = max(self._now, explicit)
            return explicit
        return self._now

    def _next_ticket(self) -> int:
        self._ticket += 1
        return self._ticket

    def begin_buu(self, buu: BuuId, start_time: int | None = None) -> None:
        with self._lock:
            self._ensure_started_locked()
            when = self._time(start_time)
            ticket = self._next_ticket()
            for buffer in self._buffers:
                buffer.append(msg.wire_begin(buu, when, ticket))
            self.lifecycle_broadcasts += 1
            self._route_if_full_locked()

    def commit_buu(self, buu: BuuId, commit_time: int | None = None) -> None:
        with self._lock:
            self._ensure_started_locked()
            when = self._time(commit_time)
            ticket = self._next_ticket()
            for buffer in self._buffers:
                buffer.append(msg.wire_commit(buu, when, ticket))
            self.lifecycle_broadcasts += 1
            self._route_if_full_locked()

    def _owner_of(self, key) -> int:
        owner = self._owners.get(key)
        if owner is None:
            owner = key_partition(key, self.num_workers, self._mask)
            if len(self._owners) < _OWNER_CACHE_MAX:
                self._owners[key] = owner
        return owner

    def on_operation(self, op: Operation) -> None:
        with self._lock:
            self._ensure_started_locked()
            if op.seq > self._now:
                self._now = op.seq
            ticket = self._next_ticket()
            self._buffers[self._owner_of(op.key)].append(
                [_OP_WIRE[op.op], op.buu, op.key, op.seq, ticket])
            self.ops_routed += 1
            self._route_if_full_locked()

    def on_operations(self, ops: Iterable[Operation]) -> None:
        with self._lock:
            self._ensure_started_locked()
            buffers = self._buffers
            owners = self._owners
            n, mask = self.num_workers, self._mask
            op_wire = _OP_WIRE
            now = self._now
            ticket = self._ticket
            count = 0
            for op in ops:
                seq = op.seq
                if seq > now:
                    now = seq
                ticket += 1
                key = op.key
                owner = owners.get(key)
                if owner is None:
                    owner = key_partition(key, n, mask)
                    if len(owners) < _OWNER_CACHE_MAX:
                        owners[key] = owner
                buffers[owner].append(
                    [op_wire[op.op], op.buu, key, seq, ticket])
                count += 1
            self._ticket = ticket
            self._now = now
            self.ops_routed += count
            self._route_if_full_locked()

    # -- routing ---------------------------------------------------------------

    def _route_if_full_locked(self) -> None:
        if max(len(b) for b in self._buffers) >= self.config.cluster_batch:
            self._flush_buffers_locked()

    def _flush_buffers_locked(self) -> None:
        """Ship every per-worker buffer as one route frame.  All-or-none:
        even an empty buffer ships (an empty frame carries the ticket
        high-water mark, which peers need to advance the merge)."""
        if all(not b for b in self._buffers):
            return
        for link, events in zip(self._links, self._buffers):
            self._send_route(link, events)
        self._buffers = [[] for _ in range(self.num_workers)]
        self.router_flushes += 1

    def _send_route(self, link: _WorkerLink, events: list) -> None:
        self._check_alive(link)
        if link.send_seq - link.acked >= self.ack_window:
            deadline = time.monotonic() + self.barrier_timeout
            with link.cond:
                while link.send_seq - link.acked >= self.ack_window:
                    self._check_alive(link)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RuntimeError(
                            f"cluster worker {link.index} stopped acking "
                            f"route frames (backpressure timeout)")
                    link.cond.wait(remaining)
        link.send_seq += 1
        link.sock.sendall(encode_frame(
            msg.route(link.send_seq, self._ticket, events)))

    def _check_alive(self, link: _WorkerLink) -> None:
        if link.error is not None:
            raise RuntimeError(
                f"cluster worker {link.index} failed: {link.error}")

    # -- barriers --------------------------------------------------------------

    def _barrier(self, window: bool, end: int = 0) -> list[dict]:
        """Flush-and-wait on every worker; returns their replies in
        worker order.  Callers hold the lock and have flushed buffers."""
        frame = encode_frame(msg.flush(self._ticket, window, end))
        for link in self._links:
            self._check_alive(link)
            link.sock.sendall(frame)
        return [self._await_reply(link) for link in self._links]

    def _await_reply(self, link: _WorkerLink) -> dict:
        try:
            reply = link.replies.get(timeout=self.barrier_timeout)
        except queue.Empty:
            raise RuntimeError(
                f"cluster worker {link.index} did not reach the barrier "
                f"within {self.barrier_timeout}s") from None
        if reply["type"] == "err":
            raise RuntimeError(
                f"cluster worker {link.index} failed: {reply['message']}")
        return reply

    # -- reporting (AnomalyMonitor) --------------------------------------------

    @property
    def sampling_probability(self) -> float:
        return 1.0 / self.config.sampling_rate

    def close_window(self, now: int | None = None) -> AnomalyReport:
        """Close the cluster-wide window: barrier every worker at the
        current ticket, sum their raw window components, estimate once
        from the sum (Theorem 5.2 linearity over item-disjoint shards)."""
        with self._lock:
            self._ensure_started_locked()
            end = self._time(now)
            self._flush_buffers_locked()
            replies = self._barrier(window=True, end=end)
            raw = CycleCounts()
            edges = EdgeStats()
            operations = 0
            patterns: dict = {}
            for reply in replies:
                raw.add(CycleCounts(**reply["raw"]))
                edges.add(EdgeStats(**reply["edges"]))
                operations += reply["ops"]
                for pattern, count in reply["patterns"].items():
                    patterns[pattern] = patterns.get(pattern, 0) + count
            p = self.sampling_probability
            report = AnomalyReport(
                window_start=self._window_start,
                window_end=end,
                estimated_2=estimate_two_cycles(raw, p),
                estimated_3=estimate_three_cycles(raw, p),
                raw=raw,
                edges=edges,
                operations=operations,
                patterns=patterns,
                health="ok",
            )
            self._window_start = end
            self.reports.append(report)
            return report

    def latest_report(self) -> AnomalyReport | None:
        """The most recently closed window's report (``None`` if no
        window has been closed yet)."""
        with self._lock:
            return self.reports[-1] if self.reports else None

    def counts(self) -> CycleCounts:
        """Cluster-wide cumulative detector counts (a ``synced`` barrier
        that leaves the current window open)."""
        with self._lock:
            self._ensure_started_locked()
            self._flush_buffers_locked()
            total = CycleCounts()
            for reply in self._barrier(window=False):
                total.add(CycleCounts(**reply["counts"]))
            return total

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything observed since construction
        (or the last :meth:`reset`)."""
        total = self.counts()
        p = self.sampling_probability
        return (estimate_two_cycles(total, p),
                estimate_three_cycles(total, p))

    # -- harness hooks ---------------------------------------------------------

    def reset(self, config: RushMonConfig) -> None:
        """Rebuild every worker's engine in place with ``config`` —
        differential and bench harnesses reuse one spawned cluster
        across runs, amortizing the process-spawn cost.  Tickets and
        watermarks stay monotone across the reset; reports, the logical
        clock and window bounds start fresh."""
        with self._lock:
            if config.num_workers != self.num_workers:
                raise ValueError(
                    f"reset cannot change num_workers "
                    f"({self.num_workers} -> {config.num_workers}); "
                    f"start a new ClusterMonitor instead")
            if config.resample_interval is not None:
                raise ValueError("resample_interval is serial-only")
            if self._started:
                self._flush_buffers_locked()
                self._barrier(window=False)
                frame = encode_frame(msg.reset(asdict(config)))
                for link in self._links:
                    link.sock.sendall(frame)
                for link in self._links:
                    reply = self._await_reply(link)
                    if reply["type"] != "reset-ok":
                        raise ProtocolError(
                            f"expected reset-ok, got {reply['type']!r}")
            self.config = config
            self.reports = []
            self._now = 0
            self._window_start = 0
            self._buffers = [[] for _ in range(self.num_workers)]
