"""Wire messages for the multi-process monitor cluster.

Everything travels in :mod:`repro.net.protocol` frames (length prefix,
codec byte, CRC-32), so the cluster inherits the net layer's corruption
detection and incremental :class:`~repro.net.protocol.FrameReader`
decoding for free.  What this module adds is the cluster's message
vocabulary on three links:

Router → worker (control)
    ``peers`` (the exchange-port map), ``route`` (a batch of events at a
    session sequence number — the same ``seq == high+1`` /
    cumulative-ack discipline as net batches, so delivery to a worker is
    effectively once), ``flush`` (a barrier: drain up to ticket ``high``
    and reply), ``reset`` (rebuild the engine with a new config;
    test/bench hook), ``ping`` (supervisor liveness probe),
    ``snap-request`` (drain and ship a shard snapshot), ``restore``
    (first message to a respawned worker: config + port map + the last
    verified snapshot), ``detach`` (stop gating the merge on a
    breaker-tripped shard) and ``bye``.

Worker → router (control)
    ``worker-hello`` (index + exchange port), ``ready``, ``ack``
    (cumulative per the session), ``report`` / ``synced`` / ``reset-ok``
    (barrier replies), ``pong``, ``snap`` (a CRC-guarded shard-snapshot
    document), ``restore-ok`` and ``err``.

Worker ↔ worker (exchange)
    ``peer-hello`` (with a ``resume`` watermark when a respawned worker
    redials) and ``edges`` — a versioned :mod:`~repro.core.frontier`
    payload of the edge groups one shard derived, plus that worker's
    ticket watermark ``mark``.  An ``edges`` message with no groups is a
    pure watermark advance; ``resume-nack`` refuses a resume the
    broadcast journal can no longer cover.

Events
------

Route events extend the net layer's wire records with the global ticket
the router stamped:

- operation: ``["r"|"w", buu, key, seq, ticket]``
- lifecycle: ``["b"|"c", buu, time, ticket]``

Tickets totally order the cluster-wide event stream; each worker merges
its local events with its peers' edge groups back into that order (see
:mod:`repro.cluster.worker`), which is what makes the cluster bit-exact
against the serial monitor.
"""

from __future__ import annotations

from repro.core.frontier import encode_frontier
from repro.core.types import AnomalyReport, CycleCounts, Operation, OpType
from repro.net.protocol import (  # noqa: F401  (re-exported for workers)
    CODEC_JSON,
    FrameReader,
    ProtocolError,
    bye,
    encode_frame,
)

__all__ = [
    "bye",
    "cluster_ack",
    "decode_route_events",
    "detach",
    "edges",
    "err",
    "flush",
    "peer_hello",
    "peers",
    "ping",
    "pong",
    "ready",
    "report_reply",
    "reset",
    "reset_ok",
    "restore",
    "restore_ok",
    "resume_nack",
    "route",
    "snap",
    "snap_request",
    "synced",
    "wire_begin",
    "wire_commit",
    "wire_op",
    "worker_hello",
]


# -- handshake -----------------------------------------------------------------


def worker_hello(index: int, port: int) -> dict:
    """A worker announcing itself and its exchange listener port."""
    return {"type": "worker-hello", "index": index, "port": port}


def peers(ports: list[int]) -> dict:
    """The router's exchange-port map, ``ports[i]`` = worker *i*."""
    return {"type": "peers", "ports": ports}


def ready(index: int) -> dict:
    """A worker reporting its peer mesh is fully connected."""
    return {"type": "ready", "index": index}


def peer_hello(index: int, resume: int | None = None) -> dict:
    """The first message on a worker↔worker exchange connection.

    ``resume`` is absent on the initial mesh build.  A *respawned*
    worker redialing a peer sets it to the ticket watermark up to which
    it already holds that peer's stream (restored from its snapshot);
    the peer replies by replaying its broadcast-journal suffix past
    that mark before any live broadcast travels on the link.
    """
    message = {"type": "peer-hello", "index": index}
    if resume is not None:
        message["resume"] = resume
    return message


def resume_nack(index: int, resume: int, trimmed: int) -> dict:
    """A peer refusing a resume: its broadcast journal no longer covers
    marks ``(resume, trimmed]`` — the redialing worker cannot be brought
    back bit-exactly and must surface the failure to the router."""
    return {"type": "resume-nack", "index": index, "resume": resume,
            "trimmed": trimmed}


# -- routing -------------------------------------------------------------------


def route(seq: int, high: int, events: list) -> dict:
    """One routed batch at session sequence ``seq``; ``high`` is the
    router's ticket watermark as of this batch (every cluster-wide
    ticket ``<= high`` has been routed somewhere)."""
    return {"type": "route", "seq": seq, "high": high, "events": events}


def cluster_ack(seq: int) -> dict:
    """Cumulative acknowledgement of every route batch ``<= seq``."""
    return {"type": "ack", "seq": seq}


def wire_op(op: Operation, ticket: int) -> list:
    """An operation event record carrying its global ticket."""
    return [op.op.value, op.buu, op.key, op.seq, ticket]


def wire_begin(buu, time: int, ticket: int) -> list:
    """A BUU-begin event record carrying its global ticket."""
    return ["b", buu, time, ticket]


def wire_commit(buu, time: int, ticket: int) -> list:
    """A BUU-commit event record carrying its global ticket."""
    return ["c", buu, time, ticket]


#: Wire tag -> enum member (dict lookup beats the enum value-call in
#: the per-record decode loop).
_OP_TYPES = {member.value: member for member in OpType}


def decode_route_events(records: list) -> list[tuple]:
    """Decode route event records into ``("op", ticket, Operation)`` /
    ``("b"|"c", ticket, buu, time)`` tuples, validating as it goes."""
    out: list[tuple] = []
    op_types = _OP_TYPES
    for record in records:
        try:
            kind = record[0]
            op_type = op_types.get(kind)
            if op_type is not None:
                out.append(("op", record[4], Operation(
                    op_type, record[1], record[2], record[3])))
            elif kind in ("b", "c"):
                out.append((kind, record[3], record[1], record[2]))
            else:
                raise ProtocolError(f"unknown event kind {kind!r}")
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(f"malformed event record {record!r}") from exc
    return out


# -- barriers ------------------------------------------------------------------


def flush(high: int, window: bool, now: int = 0) -> dict:
    """A barrier: the worker drains every event with ticket ``<= high``
    (its own and its peers'), then replies — with a ``report`` (closing
    its window at logical time ``now``) when ``window`` is true, with
    ``synced`` otherwise."""
    return {"type": "flush", "high": high, "window": window, "now": now}


def report_reply(report: AnomalyReport, counts: CycleCounts) -> dict:
    """A worker's share of a closed window, in raw components the router
    can sum (estimator linearity, Theorem 5.2), plus its cumulative
    detector counts."""
    return {
        "type": "report",
        "raw": {"ss": report.raw.ss, "dd": report.raw.dd,
                "sss": report.raw.sss, "ssd": report.raw.ssd,
                "ddd": report.raw.ddd},
        "edges": report.edges.as_dict(),
        "ops": report.operations,
        "patterns": report.patterns,
        "counts": _counts_dict(counts),
    }


def synced(counts: CycleCounts) -> dict:
    """A barrier reply that leaves the window open: just the worker's
    cumulative detector counts."""
    return {"type": "synced", "counts": _counts_dict(counts)}


def _counts_dict(counts: CycleCounts) -> dict:
    return {"ss": counts.ss, "dd": counts.dd, "sss": counts.sss,
            "ssd": counts.ssd, "ddd": counts.ddd}


# -- supervision ---------------------------------------------------------------


def ping() -> dict:
    """Router liveness probe; the worker's control loop answers
    :func:`pong` whenever it is not blocked in a barrier drain."""
    return {"type": "ping"}


def pong(index: int) -> dict:
    """A worker's answer to :func:`ping`."""
    return {"type": "pong", "index": index}


def snap_request(high: int) -> dict:
    """Ask a worker to drain its merge to ticket ``high`` (the router
    flushed every buffer first, so all streams can reach it), serialize
    its shard state, and ship it router-ward as a :func:`snap`."""
    return {"type": "snap-request", "high": high}


def snap(document: dict) -> dict:
    """A worker's shard snapshot: a
    :func:`repro.storage.wal.encode_shard_snapshot` document (format
    tag + version + CRC) the router verifies before trusting."""
    return {"type": "snap", "document": document}


def restore(config: dict, ports: list, route_high: int,
            base_mark: int, snapshot: dict | None,
            detached: list | None = None) -> dict:
    """The router's first message to a *respawned* worker.

    ``snapshot`` is the last verified shard-snapshot document (``None``
    falls back to a fresh engine at ``base_mark`` — the full-journal
    replay path); ``route_high`` is the control-session sequence the
    replay resumes after, ``ports`` the current exchange-port map for
    redialing the mesh (``None`` entries are peers that are down but
    may themselves be respawned — they dial back in), ``base_mark`` the
    ticket baseline a fresh engine starts its streams at (0 at first
    start, the reset ticket after a :func:`reset`), and ``detached``
    the shards whose breaker already tripped (their watermarks must
    never gate this worker's merge).
    """
    return {"type": "restore", "config": config, "ports": ports,
            "route_high": route_high, "base_mark": base_mark,
            "snapshot": snapshot, "detached": list(detached or ())}


def restore_ok(index: int) -> dict:
    """A respawned worker reporting its state is installed and its peer
    mesh redialed; the router may start the journal replay."""
    return {"type": "restore-ok", "index": index}


def detach(index: int) -> dict:
    """Tell a surviving worker to stop waiting on shard ``index``'s
    stream: the supervisor's circuit breaker tripped, the shard is gone,
    and its watermark must no longer gate the merge (degraded mode —
    counts continue without that shard's edges)."""
    return {"type": "detach", "index": index}


# -- lifecycle -----------------------------------------------------------------


def reset(config: dict) -> dict:
    """Rebuild the worker's engine from a fresh config (the differential
    and bench harnesses reuse one spawned cluster across runs; tickets
    and watermarks stay monotone across the reset)."""
    return {"type": "reset", "config": config}


def reset_ok() -> dict:
    """Acknowledges a :func:`reset`."""
    return {"type": "reset-ok"}


def err(message: str) -> dict:
    """A worker's terminal failure report."""
    return {"type": "err", "message": message}


# -- exchange ------------------------------------------------------------------


def edges(frm: int, groups, mark: int) -> dict:
    """Worker ``frm``'s freshly derived edge groups as a versioned
    frontier payload, plus its ticket watermark.  Empty ``groups`` is a
    pure watermark advance."""
    return {"type": "edges", "from": frm,
            "frontier": encode_frontier(groups), "mark": mark}
