"""Wire messages for the multi-process monitor cluster.

Everything travels in :mod:`repro.net.protocol` frames (length prefix,
codec byte, CRC-32), so the cluster inherits the net layer's corruption
detection and incremental :class:`~repro.net.protocol.FrameReader`
decoding for free.  What this module adds is the cluster's message
vocabulary on three links:

Router → worker (control)
    ``peers`` (the exchange-port map), ``route`` (a batch of events at a
    session sequence number — the same ``seq == high+1`` /
    cumulative-ack discipline as net batches, so delivery to a worker is
    effectively once), ``flush`` (a barrier: drain up to ticket ``high``
    and reply), ``reset`` (rebuild the engine with a new config;
    test/bench hook) and ``bye``.

Worker → router (control)
    ``worker-hello`` (index + exchange port), ``ready``, ``ack``
    (cumulative per the session), ``report`` / ``synced`` / ``reset-ok``
    (barrier replies) and ``err``.

Worker ↔ worker (exchange)
    ``peer-hello`` and ``edges`` — a versioned
    :mod:`~repro.core.frontier` payload of the edge groups one shard
    derived, plus that worker's ticket watermark ``mark``.  An ``edges``
    message with no groups is a pure watermark advance.

Events
------

Route events extend the net layer's wire records with the global ticket
the router stamped:

- operation: ``["r"|"w", buu, key, seq, ticket]``
- lifecycle: ``["b"|"c", buu, time, ticket]``

Tickets totally order the cluster-wide event stream; each worker merges
its local events with its peers' edge groups back into that order (see
:mod:`repro.cluster.worker`), which is what makes the cluster bit-exact
against the serial monitor.
"""

from __future__ import annotations

from repro.core.frontier import encode_frontier
from repro.core.types import AnomalyReport, CycleCounts, Operation, OpType
from repro.net.protocol import (  # noqa: F401  (re-exported for workers)
    CODEC_JSON,
    FrameReader,
    ProtocolError,
    bye,
    encode_frame,
)

__all__ = [
    "bye",
    "cluster_ack",
    "decode_route_events",
    "edges",
    "err",
    "flush",
    "peer_hello",
    "peers",
    "ready",
    "report_reply",
    "reset",
    "reset_ok",
    "route",
    "synced",
    "wire_begin",
    "wire_commit",
    "wire_op",
    "worker_hello",
]


# -- handshake -----------------------------------------------------------------


def worker_hello(index: int, port: int) -> dict:
    """A worker announcing itself and its exchange listener port."""
    return {"type": "worker-hello", "index": index, "port": port}


def peers(ports: list[int]) -> dict:
    """The router's exchange-port map, ``ports[i]`` = worker *i*."""
    return {"type": "peers", "ports": ports}


def ready(index: int) -> dict:
    """A worker reporting its peer mesh is fully connected."""
    return {"type": "ready", "index": index}


def peer_hello(index: int) -> dict:
    """The first message on a worker↔worker exchange connection."""
    return {"type": "peer-hello", "index": index}


# -- routing -------------------------------------------------------------------


def route(seq: int, high: int, events: list) -> dict:
    """One routed batch at session sequence ``seq``; ``high`` is the
    router's ticket watermark as of this batch (every cluster-wide
    ticket ``<= high`` has been routed somewhere)."""
    return {"type": "route", "seq": seq, "high": high, "events": events}


def cluster_ack(seq: int) -> dict:
    """Cumulative acknowledgement of every route batch ``<= seq``."""
    return {"type": "ack", "seq": seq}


def wire_op(op: Operation, ticket: int) -> list:
    """An operation event record carrying its global ticket."""
    return [op.op.value, op.buu, op.key, op.seq, ticket]


def wire_begin(buu, time: int, ticket: int) -> list:
    """A BUU-begin event record carrying its global ticket."""
    return ["b", buu, time, ticket]


def wire_commit(buu, time: int, ticket: int) -> list:
    """A BUU-commit event record carrying its global ticket."""
    return ["c", buu, time, ticket]


#: Wire tag -> enum member (dict lookup beats the enum value-call in
#: the per-record decode loop).
_OP_TYPES = {member.value: member for member in OpType}


def decode_route_events(records: list) -> list[tuple]:
    """Decode route event records into ``("op", ticket, Operation)`` /
    ``("b"|"c", ticket, buu, time)`` tuples, validating as it goes."""
    out: list[tuple] = []
    op_types = _OP_TYPES
    for record in records:
        try:
            kind = record[0]
            op_type = op_types.get(kind)
            if op_type is not None:
                out.append(("op", record[4], Operation(
                    op_type, record[1], record[2], record[3])))
            elif kind in ("b", "c"):
                out.append((kind, record[3], record[1], record[2]))
            else:
                raise ProtocolError(f"unknown event kind {kind!r}")
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(f"malformed event record {record!r}") from exc
    return out


# -- barriers ------------------------------------------------------------------


def flush(high: int, window: bool, now: int = 0) -> dict:
    """A barrier: the worker drains every event with ticket ``<= high``
    (its own and its peers'), then replies — with a ``report`` (closing
    its window at logical time ``now``) when ``window`` is true, with
    ``synced`` otherwise."""
    return {"type": "flush", "high": high, "window": window, "now": now}


def report_reply(report: AnomalyReport, counts: CycleCounts) -> dict:
    """A worker's share of a closed window, in raw components the router
    can sum (estimator linearity, Theorem 5.2), plus its cumulative
    detector counts."""
    return {
        "type": "report",
        "raw": {"ss": report.raw.ss, "dd": report.raw.dd,
                "sss": report.raw.sss, "ssd": report.raw.ssd,
                "ddd": report.raw.ddd},
        "edges": report.edges.as_dict(),
        "ops": report.operations,
        "patterns": report.patterns,
        "counts": _counts_dict(counts),
    }


def synced(counts: CycleCounts) -> dict:
    """A barrier reply that leaves the window open: just the worker's
    cumulative detector counts."""
    return {"type": "synced", "counts": _counts_dict(counts)}


def _counts_dict(counts: CycleCounts) -> dict:
    return {"ss": counts.ss, "dd": counts.dd, "sss": counts.sss,
            "ssd": counts.ssd, "ddd": counts.ddd}


# -- lifecycle -----------------------------------------------------------------


def reset(config: dict) -> dict:
    """Rebuild the worker's engine from a fresh config (the differential
    and bench harnesses reuse one spawned cluster across runs; tickets
    and watermarks stay monotone across the reset)."""
    return {"type": "reset", "config": config}


def reset_ok() -> dict:
    """Acknowledges a :func:`reset`."""
    return {"type": "reset-ok"}


def err(message: str) -> dict:
    """A worker's terminal failure report."""
    return {"type": "err", "message": message}


# -- exchange ------------------------------------------------------------------


def edges(frm: int, groups, mark: int) -> dict:
    """Worker ``frm``'s freshly derived edge groups as a versioned
    frontier payload, plus its ticket watermark.  Empty ``groups`` is a
    pure watermark advance."""
    return {"type": "edges", "from": frm,
            "frontier": encode_frontier(groups), "mark": mark}
