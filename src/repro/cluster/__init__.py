"""Multi-process sharded monitor cluster behind one AnomalyMonitor.

``repro.cluster`` scales the monitor across *processes* the way
``repro.core.concurrent`` scales it across threads: N spawn-safe worker
processes each own a key-range shard of collector+detector, a router
facade (:class:`ClusterMonitor`) key-hashes events to workers over the
:mod:`repro.net` framing, workers exchange the edges they derive so
cross-shard transactions still close cycles, and window reports merge
by summing raw per-shard components (Theorem 5.2 estimator linearity).
At ``sr = 1`` with ``mob=False`` the merged counts are bit-exact
against the serial monitor and the exact offline checkers — the cluster
differential in ``tests/test_cluster.py`` pins this.

See :mod:`repro.cluster.monitor` for the facade and
:mod:`repro.cluster.worker` for the merge that makes the partition
exact.
"""

from repro.cluster.monitor import ClusterMonitor
from repro.cluster.worker import ClusterWorker, worker_main

__all__ = ["ClusterMonitor", "ClusterWorker", "worker_main"]
