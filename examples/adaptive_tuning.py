#!/usr/bin/env python
"""Closing the loop: automatic consistency tuning from anomaly reports.

The paper's Fig 1 envisions a system that *adjusts* its configuration
from the monitor's real-time reports; §8 lists it as future work.  This
example wires the library's :class:`~repro.core.controller.AnomalyController`
— a hysteresis controller over a ladder of staleness bounds — into an
asynchronous SGD run: after every monitoring window the controller
tightens the bound if the anomaly rate is above the band and relaxes it
(recovering throughput) when the system is quiet.

Run:  python examples/adaptive_tuning.py
"""

import random

from repro.core.controller import AnomalyController
from repro.ml.async_sgd import AsyncTrainer
from repro.sim import SimConfig
from repro.workloads.datasets import synthetic_click_dataset


def main() -> None:
    dataset = synthetic_click_dataset(300, 60, 5, rng=random.Random(4))
    trainer = AsyncTrainer(
        dataset, "asgd",
        SimConfig(num_workers=16, write_latency=800, staleness_bound=None,
                  compute_jitter=20, seed=4),
        learning_rate=0.6, batch_per_round=100, seed=4,
    )
    controller = AnomalyController(upper=0.12, lower=0.06, cooldown=1)

    print("round  bound  anomaly rate  loss    action")
    for round_index in range(20):
        trainer.simulator.config.staleness_bound = controller.bound
        bound_used = controller.bound
        trainer.simulator.run(trainer._round_buus())
        report = trainer.monitor.report(trainer.simulator.now)
        decision = controller.observe(report)
        print(f"{round_index:>5}  {str(bound_used):>5}  "
              f"{decision.rate:>12.4f}  {trainer.current_loss():.4f}  "
              f"{decision.action}")

    print(f"\nfinal loss {trainer.current_loss():.4f} "
          f"(planted optimum {trainer.optimum:.4f}); the controller "
          f"settled at s={controller.bound}")


if __name__ == "__main__":
    main()
