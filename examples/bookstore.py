#!/usr/bin/env python
"""Weak-isolation bookstore: consistency violations vs anomalies (Fig 11).

An online bookstore where concurrent customers check stock, think, and
then decrement it without re-validating — the classic write-skew setup.
We sweep the chaos level (write visibility latency) and show the
violation rate (orders that drive a stock negative) moving together with
RushMon's cycle counts.

Run:  python examples/bookstore.py
"""

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim import SimConfig
from repro.workloads.bookstore import Bookstore, BookstoreConfig


def run_shop(write_latency: int) -> tuple[float, float, float]:
    monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False, seed=7))
    shop = Bookstore(
        BookstoreConfig(num_books=60, customers=16, books_per_order=3,
                        initial_stock=3, think_time=30,
                        curator_interval=300, seed=7),
        SimConfig(num_workers=16, seed=7, write_latency=write_latency,
                  compute_jitter=30),
    )
    shop.simulator.subscribe(monitor)
    counter = shop.run(num_purchases=1200)
    e2, e3 = monitor.cumulative_estimates()
    steps = max(1, shop.simulator.now)
    return counter.violation_rate, 1000 * e2 / steps, 1000 * e3 / steps


def main() -> None:
    print("latency  violation %  2-cyc/kstep  3-cyc/kstep")
    for latency in (0, 100, 300, 800, 1500):
        violations, rate2, rate3 = run_shop(latency)
        print(f"{latency:>7}  {100 * violations:>11.2f}  "
              f"{rate2:>11.2f}  {rate3:>11.2f}")
    print("\nThe violation rate and the monitor's cycle rates rise "
          "together:\nthe monitor flags unsafe operating points without "
          "knowing the\napplication's integrity constraints.")


if __name__ == "__main__":
    main()
