#!/usr/bin/env python
"""Quickstart: monitor a weakly-isolated workload in real time.

Runs 16 simulated workers hammering a small shared counter array with no
isolation, with a RushMon monitor attached to the storage layer, and
prints a windowed anomaly report — the paper's Fig 4 wiring in twenty
lines.

Run:  python examples/quickstart.py
"""

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim import SimConfig, Simulator, read_modify_write


def main() -> None:
    # A monitor sampling 1 in 2 data items, with MOB and pruning on —
    # the paper's deployed configuration, scaled to this toy workload.
    monitor = RushMon(RushMonConfig(sampling_rate=2, mob=True,
                                    pruning="both", seed=42))

    simulator = Simulator(
        SimConfig(num_workers=16, write_latency=100, compute_jitter=10,
                  seed=42),
        listeners=[monitor],
    )

    print("round  ops    est 2-cycles  est 3-cycles  (per monitoring window)")
    for round_index in range(5):
        buus = [
            read_modify_write([f"counter{i % 20}"], lambda v: (v or 0) + 1)
            for i in range(500)
        ]
        simulator.run(buus)
        report = monitor.report(simulator.now)
        print(f"{round_index:>5}  {report.operations:>5}  "
              f"{report.estimated_2:>12.1f}  {report.estimated_3:>12.1f}")

    e2, e3 = monitor.cumulative_estimates()
    print(f"\ntotal estimated anomalies: {e2:.0f} two-cycles, "
          f"{e3:.0f} three-cycles")
    print(f"live dependency graph after pruning: "
          f"{monitor.detector.num_vertices} vertices, "
          f"{monitor.detector.num_edges} edges "
          f"(of {simulator.buus_completed} BUUs executed)")


if __name__ == "__main__":
    main()
