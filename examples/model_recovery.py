#!/usr/bin/env python
"""Recovering a ruined model (the paper's §8 second future direction).

An aggressive learning rate plus full asynchrony blows the model up.
The unprotected run ends wherever the explosion leaves it; the
protected run — :class:`~repro.ml.recovery.RecoveringTrainer` — rolls
the shared store back to the last good checkpoint whenever the loss
blows past the checkpoint (or the anomaly rate spikes) and tightens the
staleness bound a rung, so training finishes near its best state.

Run:  python examples/model_recovery.py
"""

import random

from repro.ml.async_sgd import AsyncTrainer
from repro.ml.recovery import RecoveringTrainer
from repro.sim import SimConfig
from repro.workloads.datasets import synthetic_click_dataset

ROUNDS = 20


def make_trainer(seed=5):
    dataset = synthetic_click_dataset(300, 30, 5, rng=random.Random(5))
    return AsyncTrainer(
        dataset, "asgd",
        SimConfig(num_workers=16, seed=seed, write_latency=800,
                  staleness_bound=None, compute_jitter=10),
        learning_rate=0.5,  # hot enough to diverge under full asynchrony
        batch_per_round=150, seed=seed,
    )


def main() -> None:
    raw = make_trainer().train(rounds=ROUNDS)
    print(f"unprotected run: final loss {raw.final_loss:.3f} "
          f"(diverged: {not raw.converged})")

    trainer = make_trainer()
    recovering = RecoveringTrainer(trainer, blowup_factor=1.2)
    result = recovering.train(rounds=ROUNDS)

    print(f"protected run:   final loss {result.final_loss:.3f} "
          f"after {result.rollbacks} rollback(s)\n")
    print("rollback log:")
    for event in result.events:
        print(f"  round {event.round_index}: {event.reason} — loss "
              f"{event.loss_before:.3f} -> restored "
              f"{event.loss_restored:.3f}, staleness tightened to "
              f"s={event.new_bound}")
    print(f"\nbest checkpointed loss: {result.best_loss:.3f} "
          f"(planted optimum {trainer.optimum:.3f})")


if __name__ == "__main__":
    main()
