#!/usr/bin/env python
"""Asynchronous SGD with a live anomaly monitor (the Fig 8 story).

Trains a logistic-regression model with fully asynchronous workers for
the first half of the run, then reinforces consistency (staleness bound
s=1) halfway — watch the anomaly rate and the loss drop together.  The
point of the paper: the monitor's cheap cycle counts predict the
accuracy improvement without ever computing the loss.

Run:  python examples/sgd_monitoring.py
"""

import random

from repro.ml.async_sgd import AsyncTrainer
from repro.sim import SimConfig
from repro.workloads.datasets import synthetic_click_dataset

SWITCH_ROUND = 10
ROUNDS = 20


def main() -> None:
    dataset = synthetic_click_dataset(
        num_samples=300, num_features=60, features_per_sample=5,
        rng=random.Random(1),
    )
    trainer = AsyncTrainer(
        dataset,
        optimizer="asgd",
        sim_config=SimConfig(num_workers=16, write_latency=800,
                             staleness_bound=None, compute_jitter=20, seed=1),
        learning_rate=0.6,
        batch_per_round=100,
        seed=1,
    )
    print(f"planted-model loss (target): {trainer.optimum:.4f}")
    print(f"initial loss:                {trainer.start_loss:.4f}\n")
    print("round  staleness  loss     2-cyc/kstep  3-cyc/kstep")

    result = trainer.train(
        rounds=ROUNDS,
        staleness_schedule={SWITCH_ROUND: 1},
    )
    for record in result.rounds:
        staleness = "async" if record.round_index < SWITCH_ROUND else "s=1"
        marker = "  <- consistency reinforced" if (
            record.round_index == SWITCH_ROUND) else ""
        print(f"{record.round_index:>5}  {staleness:>9}  "
              f"{record.loss:.4f}  {1000 * record.anomaly_rate_2:>11.2f}  "
              f"{1000 * record.anomaly_rate_3:>11.2f}{marker}")

    print(f"\nfinal loss: {result.final_loss:.4f} "
          f"({'converged' if result.converged else 'not converged'})")


if __name__ == "__main__":
    main()
