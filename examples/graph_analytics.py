#!/usr/bin/env python
"""Monitoring asynchronous graph analytics (the Fig 10 workloads).

Runs weakly connected components and greedy coloring on a scaled
stand-in for the paper's uk-2007-05 web graph under increasing execution
chaos, reporting convergence cost next to the monitor's anomaly rates.

Run:  python examples/graph_analytics.py
"""

from repro.graphalgo.coloring import AsyncColoring
from repro.graphalgo.wcc import AsyncWcc
from repro.sim import SimConfig
from repro.workloads.datasets import scaled_real_graph_standin

CONFIGS = [
    ("synchronous", dict(write_latency=0, staleness_bound=1)),
    ("mildly async", dict(write_latency=300, staleness_bound=3)),
    ("fully async", dict(write_latency=2000, staleness_bound=None)),
]


def main() -> None:
    graph = scaled_real_graph_standin("uk-2007-05", scale=4e-6)
    print(f"uk-2007-05 stand-in: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges "
          f"(avg degree {graph.average_degree():.1f})\n")

    print("algorithm  config        BUUs to converge  2-cyc/kstep  3-cyc/kstep")
    for label, knobs in CONFIGS:
        wcc = AsyncWcc(graph, SimConfig(num_workers=8, seed=3,
                                        compute_jitter=10, **knobs))
        result = wcc.run(max_rounds=40)
        rate2, rate3 = result.cycles_per_time()
        print(f"{'WCC':<9}  {label:<12}  {str(result.buus_to_converge):>16}  "
              f"{1000 * rate2:>11.2f}  {1000 * rate3:>11.2f}")

    print()
    for label, knobs in CONFIGS:
        coloring = AsyncColoring(graph, SimConfig(num_workers=8, seed=3,
                                                  compute_jitter=10, **knobs))
        result = coloring.run(max_rounds=40)
        rate2, rate3 = result.cycles_per_time()
        print(f"{'coloring':<9}  {label:<12}  "
              f"{str(result.buus_to_converge):>16}  "
              f"{1000 * rate2:>11.2f}  {1000 * rate3:>11.2f}  "
              f"({result.colors_used} colors)")


if __name__ == "__main__":
    main()
