"""Fig 18: unsampled (US) vs edge sampling (ES) vs data-centric (DCS).

The paper's headline comparison: ES pays the same collection overhead as
US at every sampling rate (the §4.2 argument), DCS's overhead falls with
the rate, and all three produce matching *calibrated* count estimates.
"""

from repro.bench.harness import SAMPLING_RATES, measure_collector, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import (
    BaselineCollector,
    DataCentricCollector,
    EdgeSamplingCollector,
)


def test_fig18_sampler_comparison(benchmark, default_run):
    def run():
        items = range(default_run.num_items)
        rows = []
        by_config = {}
        us = measure_collector(BaselineCollector(), default_run, "US")
        for sr in SAMPLING_RATES:
            es = measure_collector(
                EdgeSamplingCollector(sampling_rate=sr), default_run,
                f"ES sr={sr}", estimator="edge",
            )
            dcs = measure_collector(
                DataCentricCollector(sampling_rate=sr, mob=False, seed=5,
                                     items=items),
                default_run, f"DCS sr={sr}",
            )
            for m, style in ((us, "US"), (es, "ES"), (dcs, "DCS")):
                rows.append(
                    (
                        style,
                        sr,
                        round(m.overhead_percent(default_run.app_seconds), 2),
                        round(m.overhead_with_detection_percent(
                            default_run.app_seconds), 2),
                        m.edges,
                        round(m.estimated_2, 1),
                        round(m.estimated_3, 1),
                    )
                )
            by_config[sr] = (us, es, dcs)
        emit(
            "fig18_sampler_comparison",
            format_table(
                "Fig 18: US vs ES vs DCS (estimates calibrated; '+D' adds "
                "cycle detection)",
                ["sampler", "sr", "overhead%", "overhead%+D", "edges",
                 "est 2-cyc", "est 3-cyc"],
                rows,
            ),
        )
        return by_config

    by_config = benchmark.pedantic(run, rounds=1, iterations=1)
    us, es, dcs = by_config[50]
    # The paper's claims: ES bookkeeping cost stays at US level (within
    # noise), while DCS is substantially cheaper at high rates.
    assert es.collect_seconds > 0.5 * us.collect_seconds
    assert dcs.collect_seconds < 0.6 * us.collect_seconds
    # All three agree with the truth at sr=1-ish accuracy for mid rates.
    us1, es1, dcs1 = by_config[1]
    assert dcs1.estimated_2 == us1.estimated_2
