"""Shared fixtures for the per-figure benchmark harness.

Each bench regenerates one of the paper's tables/figures: it prints the
rows (visible with ``pytest -s``) and writes them to
``benchmarks/results/<figure>.txt``.  Workload sizes scale with the
``REPRO_SCALE`` environment variable (default 1.0).
"""

import os

import pytest

from repro.bench.harness import record_graph_workload, scale


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    os.environ.setdefault(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(__file__), "results"),
    )


@pytest.fixture(scope="session")
def default_run():
    """The Table 1 default workload (V=10M, D=10, C=32, LB=0 in the paper;
    scaled here), recorded once and replayed by several benches."""
    return record_graph_workload(
        num_buus=scale(2500),
        num_vertices=scale(2000),
        average_degree=10,
        degree_lower_bound=0,
        num_workers=8,
        seed=0,
    )
