"""Extension bench: anomaly-pattern composition by isolation level.

Section 3 argues the classic anomaly taxonomy is not exhaustive; this
bench shows what the taxonomy *does* capture on the bookstore workload
and how the isolation level changes the picture: weak isolation and
snapshot isolation both produce classified 2-cycles (dominated by lost
updates on the contended stocks), while serializability eliminates every
pattern.
"""

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.core.patterns import AnomalyPattern
from repro.sim.scheduler import SimConfig
from repro.workloads.bookstore import Bookstore, BookstoreConfig

ISOLATIONS = ("none", "snapshot", "serializable")
PATTERNS = [p.value for p in AnomalyPattern]


def _run(isolation):
    monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
    shop = Bookstore(
        BookstoreConfig(num_books=scale(30), customers=16,
                        books_per_order=3, initial_stock=3,
                        think_time=30, seed=50),
        SimConfig(num_workers=16, seed=50, write_latency=300,
                  compute_jitter=30, isolation=isolation),
    )
    shop.simulator.subscribe(monitor)
    shop.run(scale(900))
    return monitor.detector.patterns.as_dict()


def test_patterns_by_workload(benchmark):
    def run():
        return {iso: _run(iso) for iso in ISOLATIONS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for iso in ISOLATIONS:
        counts = results[iso]
        rows.append([iso] + [counts.get(name, 0) for name in PATTERNS])
    emit(
        "patterns_by_isolation",
        format_table(
            "Extension: 2-cycle anomaly patterns by isolation level "
            "(bookstore workload)",
            ["isolation"] + PATTERNS,
            rows,
        ),
    )
    assert sum(results["none"].values()) > 0
    assert sum(results["snapshot"].values()) > 0
    assert sum(results["serializable"].values()) == 0
    # the contended-stock workload is dominated by lost updates
    assert results["none"].get("lost_update", 0) > 0
