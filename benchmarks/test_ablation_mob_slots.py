"""Ablation: the MOB read-array length (§5.2's sizing question).

The paper derives that ~2 reads sit between consecutive writes and asks
"how to choose the length of the fixed-length array".  This bench sweeps
the array length: 1 slot (Algorithm 2's pseudo-code verbatim) loses the
cycles whose surviving read belongs to the writer itself; 2 slots
recover almost everything; more slots buy little.
"""

from repro.bench.harness import measure_collector, record_graph_workload, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector

SLOTS = (1, 2, 4, 8)


def test_ablation_mob_slots(benchmark):
    def run():
        history = record_graph_workload(
            num_buus=scale(1800), num_vertices=scale(1500), seed=41,
        )
        items = range(history.num_items)
        full = measure_collector(
            DataCentricCollector(sampling_rate=1, mob=False), history, "full"
        )
        denom = full.estimated_2 + full.estimated_3
        rows = []
        retention = {}
        for slots in SLOTS:
            m = measure_collector(
                DataCentricCollector(sampling_rate=1, mob=True, seed=3,
                                     mob_slots=slots),
                history, f"slots={slots}",
            )
            rel = (m.estimated_2 + m.estimated_3) / max(denom, 1e-9)
            rows.append((slots, m.edges, round(rel, 3)))
            retention[slots] = rel
        rows.append(("full readIDs", full.edges, 1.0))
        emit(
            "ablation_mob_slots",
            format_table(
                "Ablation: MOB read-array length vs cycle retention",
                ["slots", "edges", "relative cycles"],
                rows,
            ),
        )
        return retention

    retention = benchmark.pedantic(run, rounds=1, iterations=1)
    assert retention[1] < retention[2] <= retention[8] + 0.05
    assert retention[2] > 0.9  # the paper's 0.98-1.02 band, with slack
