"""Ablation: periodic re-sampling of the chosen items (§5.1).

A fixed item sample can be systematically lucky or unlucky; §5.1
re-samples periodically to push the effective sampling closer to
independent edge sampling.  This bench compares the spread of windowed
estimates with and without re-sampling on a long run.
"""

import statistics

from repro.bench.harness import record_graph_workload, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_two_cycles


def _window_estimates(run, resample_interval, windows=8, seed=5):
    collector = DataCentricCollector(sampling_rate=5, mob=False, seed=seed,
                                     resample_interval=resample_interval)
    detector = CycleDetector()
    per_window = []
    chunk = len(run.ops) // windows
    acc = 0.0
    for index, op in enumerate(run.ops, start=1):
        for edge in collector.handle(op):
            new = detector.add_edge(edge)
            acc += estimate_two_cycles(new, collector.sampling_probability)
        if index % chunk == 0:
            per_window.append(acc)
            acc = 0.0
    return per_window


def test_ablation_resampling(benchmark):
    def run():
        history = record_graph_workload(
            num_buus=scale(2400), num_vertices=scale(1500), seed=44,
        )
        seeds = range(scale(12, minimum=8))
        fixed_totals, resampled_totals = [], []
        for seed in seeds:
            fixed_totals.append(sum(_window_estimates(history, None,
                                                      seed=seed)))
            resampled_totals.append(
                sum(_window_estimates(history, resample_interval=4000,
                                      seed=seed))
            )
        rows = [
            ("fixed sample", round(statistics.mean(fixed_totals), 1),
             round(statistics.stdev(fixed_totals), 1)),
            ("re-sampled", round(statistics.mean(resampled_totals), 1),
             round(statistics.stdev(resampled_totals), 1)),
        ]
        emit(
            "ablation_resampling",
            format_table(
                "Ablation: fixed vs periodically re-sampled item set "
                f"({len(list(seeds))} runs, total 2-cycle estimate)",
                ["sampler", "mean", "stdev"],
                rows,
            ),
        )
        return fixed_totals, resampled_totals

    fixed, resampled = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both hover near the same mean (unbiasedness is unaffected); the
    # re-sampled estimates came from more independent coins.  The means
    # agree within the run-to-run spread.
    mean_fixed = statistics.mean(fixed)
    mean_resampled = statistics.mean(resampled)
    spread = max(statistics.stdev(fixed), statistics.stdev(resampled), 1.0)
    assert abs(mean_fixed - mean_resampled) < 4 * spread
