"""Fig 24: effectiveness of vertex pruning.

Paper, on the default synthetic workload:
  (a) pruning overhead per edge (ns) — all pruners cheap;
  (b) number of remaining edges — dis-pruning keeps the live graph flat;
  (c)/(d) per-edge 2-/3-cycle detection time — pruning wins by orders of
  magnitude once the unpruned graph grows.

We replay the same baseline edge stream through four detector
configurations and snapshot per-window cost and live-graph size.  Two
detection-cost figures are reported:

- *streaming ns/edge* — our incremental detector's per-edge cost
  (degree-local, so nearly size-insensitive; pruning buys bounded
  memory rather than speed here);
- *recount ms* — the cost of the paper's detection model, a brute-force
  recount over the stored graph at the end of the run, where pruning
  delivers the orders-of-magnitude win the paper reports.
"""

import time

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import BaselineCollector
from repro.core.detector import CycleDetector
from repro.core.pruning import make_pruner
from repro.graph.cycles import count_labelled_short_cycles
from repro.graph.dependency import DependencyGraph

PRUNERS = ["none", "ect", "distance", "both"]


def _brute_force_recount_seconds(detector) -> float:
    """Time the paper's detection model: exact counting over the stored
    (live) graph, as a periodic recount would pay."""
    graph = DependencyGraph()
    for (src, dst), labels in detector.graph.labels.items():
        for label in labels:
            graph.add(src, dst, label)
    start = time.perf_counter()
    count_labelled_short_cycles(graph)
    return time.perf_counter() - start


def _replay(run, pruner_name, checkpoint_every, prune_interval):
    events = sorted(
        [(t, 0, buu) for buu, t in run.begins]
        + [(t, 1, buu) for buu, t in run.commits]
    )
    edges = BaselineCollector().handle_all(run.ops)
    detector = CycleDetector(pruner=make_pruner(pruner_name),
                             prune_interval=prune_interval)
    snapshots = []
    window_start = time.perf_counter()
    event_idx = 0
    for index, edge in enumerate(edges, start=1):
        while event_idx < len(events) and events[event_idx][0] <= edge.seq:
            t, kind, buu = events[event_idx]
            if kind == 0:
                detector.begin_buu(buu, t)
            else:
                detector.commit_buu(buu, t)
            event_idx += 1
        detector.add_edge(edge)
        if index % checkpoint_every == 0:
            elapsed = time.perf_counter() - window_start
            snapshots.append(
                {
                    "edges_seen": index,
                    "live_edges": detector.num_edges,
                    "live_vertices": detector.num_vertices,
                    "ns_per_edge": 1e9 * elapsed / checkpoint_every,
                }
            )
            window_start = time.perf_counter()
    return detector, snapshots


def test_fig24_pruning(benchmark, default_run):
    def run():
        checkpoint = scale(2000)
        rows = []
        recount_rows = []
        outcome = {}
        for name in PRUNERS:
            detector, snaps = _replay(default_run, name,
                                      checkpoint_every=checkpoint,
                                      prune_interval=500)
            for snap in snaps:
                rows.append((name, snap["edges_seen"], snap["live_edges"],
                             snap["live_vertices"],
                             round(snap["ns_per_edge"])))
            recount = _brute_force_recount_seconds(detector)
            recount_rows.append((name, detector.num_edges,
                                 round(1000 * recount, 3)))
            outcome[name] = (detector, snaps, recount)
        emit(
            "fig24_pruning",
            format_table(
                "Fig 24(a,b): pruning — live graph size and streaming "
                "per-edge cost (includes pruning work)",
                ["pruning", "edges seen", "live edges", "live vertices",
                 "ns/edge"],
                rows,
            )
            + "\n\n"
            + format_table(
                "Fig 24(c,d): brute-force recount cost over the stored "
                "graph (the paper's detection model)",
                ["pruning", "stored edges", "recount ms"],
                recount_rows,
            ),
        )
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    none_det, none_snaps, none_recount = outcome["none"]
    both_det, both_snaps, both_recount = outcome["both"]
    # Pruning must not change the counted anomalies...
    assert both_det.counts.two_cycles == none_det.counts.two_cycles
    assert both_det.counts.three_cycles == none_det.counts.three_cycles
    # ...while keeping the live graph dramatically smaller at the end...
    if none_snaps and both_snaps:
        assert both_snaps[-1]["live_edges"] < none_snaps[-1]["live_edges"]
        assert both_snaps[-1]["live_vertices"] < none_snaps[-1]["live_vertices"]
    # ...which makes the paper's periodic recount orders of magnitude
    # cheaper (their "1000x" claim, at our scale).
    assert both_recount * 20 < none_recount
