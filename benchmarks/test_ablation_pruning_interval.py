"""Ablation: how often to run the pruning pass.

The periodic prune pass trades its own cost against detection cost: a
tiny interval spends all its time in SCC passes; a huge interval lets
the live graph grow and 3-cycle detection slow down.  The sweet spot is
broad, which is why the paper can leave it as "periodically".
"""

import time

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import BaselineCollector
from repro.core.detector import CycleDetector
from repro.core.pruning import CombinedPruning

INTERVALS = (100, 500, 2000, 10**9)  # effectively-never last


def _replay(run, prune_interval):
    events = sorted(
        [(t, 0, buu) for buu, t in run.begins]
        + [(t, 1, buu) for buu, t in run.commits]
    )
    edges = BaselineCollector().handle_all(run.ops)
    detector = CycleDetector(pruner=CombinedPruning(),
                             prune_interval=prune_interval)
    start = time.perf_counter()
    event_idx = 0
    for edge in edges:
        while event_idx < len(events) and events[event_idx][0] <= edge.seq:
            t, kind, buu = events[event_idx]
            (detector.begin_buu if kind == 0 else detector.commit_buu)(buu, t)
            event_idx += 1
        detector.add_edge(edge)
    elapsed = time.perf_counter() - start
    return detector, elapsed, len(edges)


def test_ablation_pruning_interval(benchmark, default_run):
    def run():
        rows = []
        outcome = {}
        for interval in INTERVALS:
            detector, elapsed, edges = _replay(default_run, interval)
            rows.append((
                "never" if interval >= 10**9 else interval,
                round(1e9 * elapsed / max(1, edges)),
                detector.num_edges,
                detector.prune_passes,
            ))
            outcome[interval] = (detector, elapsed)
        emit(
            "ablation_pruning_interval",
            format_table(
                "Ablation: pruning interval vs detection cost",
                ["prune every N edges", "ns/edge", "final live edges",
                 "prune passes"],
                rows,
            ),
        )
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    # Counts identical across intervals (pruning safety)...
    counts = [d.counts.two_cycles for d, _ in outcome.values()]
    assert len(set(counts)) == 1
    # ...and any pruning keeps the live graph smaller than never-pruning.
    never = outcome[10**9][0]
    assert outcome[500][0].num_edges < never.num_edges
