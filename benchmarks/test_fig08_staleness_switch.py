"""Fig 8: reinforcing consistency mid-run.

Paper: ASGD starts at staleness 30 and drops to 1 at the 60th iteration;
the anomaly count falls and convergence resumes simultaneously — the
monitor predicts the accuracy improvement without computing the loss.
"""

import random

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.ml.async_sgd import AsyncTrainer
from repro.sim.scheduler import SimConfig
from repro.workloads.datasets import synthetic_click_dataset

SWITCH_ROUND = 12


def test_fig08_staleness_switch(benchmark):
    def run():
        dataset = synthetic_click_dataset(scale(300), scale(60), 5,
                                          rng=random.Random(8))
        trainer = AsyncTrainer(
            dataset, "asgd",
            SimConfig(num_workers=16, seed=8, write_latency=800,
                      staleness_bound=30, compute_jitter=20),
            learning_rate=0.6, batch_per_round=scale(100), seed=8,
        )
        result = trainer.train(
            rounds=SWITCH_ROUND * 2,
            staleness_schedule={SWITCH_ROUND: 1},
        )
        rows = [
            (r.round_index,
             "s=30" if r.round_index < SWITCH_ROUND else "s=1",
             round(r.loss, 4),
             round(1000 * r.anomaly_rate_2, 2),
             round(1000 * r.anomaly_rate_3, 2))
            for r in result.rounds
        ]
        emit(
            "fig08_staleness_switch",
            format_table(
                f"Fig 8: staleness 30 -> 1 at round {SWITCH_ROUND}: loss "
                "and anomaly rates per round",
                ["round", "staleness", "loss", "2-cyc/kstep", "3-cyc/kstep"],
                rows,
            ),
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    before = [r for r in result.rounds if r.round_index < SWITCH_ROUND]
    after = [r for r in result.rounds if r.round_index >= SWITCH_ROUND + 1]
    assert before and after
    mean = lambda xs: sum(xs) / len(xs)
    # Anomaly rate drops after the reinforcement...
    assert mean([r.anomaly_rate_2 + r.anomaly_rate_3 for r in after]) < mean(
        [r.anomaly_rate_2 + r.anomaly_rate_3 for r in before]
    )
    # ...and the loss improves.
    assert after[-1].loss < before[-1].loss
