"""Extension bench: serial vs. sharded monitored throughput (ops/sec).

Not a paper figure — the paper's overhead numbers come from a 32/128-core
C++ deployment — but the reproduction's concurrent service needs the
same question answered at its own scale: what does monitoring cost when
N real threads feed the sharded collector, relative to the serial
monitor?  See ``repro.bench.threads`` for the CPython/GIL caveat.
"""

from repro.bench.harness import scale
from repro.bench.threads import run_thread_scaling


def test_thread_scaling(benchmark):
    def run():
        return run_thread_scaling(
            thread_counts=(1, 2, 4, 8),
            buus=scale(3000),
            keys=256,
            touch=3,
            sampling_rate=4,
            num_shards=16,
            seed=0,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[0]["mode"] == "serial"
    assert all(row["ops_per_sec"] > 0 for row in rows)
    # Every mode must have monitored the full workload.
    ops = {row["ops"] for row in rows}
    assert len(ops) == 1
