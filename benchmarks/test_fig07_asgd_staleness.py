"""Fig 7: ASGD convergence and isolation anomalies vs staleness bound.

Paper: staleness s ∈ {1, 2, 3, 5, 10, 20, 30}.  Smaller s converges to
low loss in fewer iterations (7a) and produces fewer cycles per second
(7b — the paper reports counts per second; simulated time stands in for
wall-clock here).
"""

import random

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.ml.async_sgd import AsyncTrainer
from repro.sim.scheduler import SimConfig
from repro.workloads.datasets import synthetic_click_dataset

STALENESS = (1, 2, 3, 5, 10, 20, 30)


def test_fig07_asgd_staleness(benchmark):
    def run():
        dataset = synthetic_click_dataset(scale(300), scale(60), 5,
                                          rng=random.Random(7))
        rows = []
        outcome = {}
        for s in STALENESS:
            trainer = AsyncTrainer(
                dataset, "asgd",
                SimConfig(num_workers=16, seed=7, write_latency=800,
                          staleness_bound=s, compute_jitter=20),
                learning_rate=0.6, batch_per_round=scale(100), seed=7,
            )
            result = trainer.train(rounds=25, convergence_margin=0.03)
            c2, c3 = result.cycles_per_time()
            losses = [round(r.loss, 4) for r in result.rounds[:10]]
            rows.append((s, result.buus_to_converge or "-",
                         round(result.final_loss, 4),
                         round(1000 * c2, 2), round(1000 * c3, 2),
                         " ".join(str(l) for l in losses[:6])))
            outcome[s] = (result, c2 + c3)
        emit(
            "fig07_asgd_staleness",
            format_table(
                "Fig 7: ASGD staleness sweep (cycles per 1000 simulated "
                "steps; loss trajectory of first rounds)",
                ["s", "BUUs to conv", "final loss", "2-cyc/kstep",
                 "3-cyc/kstep", "early losses"],
                rows,
            ),
        )
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    tight, _rate_tight = outcome[1]
    loose, _rate_loose = outcome[30]
    # 7a: tight staleness reaches convergence in fewer BUUs (or at all).
    tight_buus = tight.buus_to_converge or 10**9
    loose_buus = loose.buus_to_converge or 10**9
    assert tight_buus <= loose_buus
    # 7b: the anomaly rate grows with s.
    assert outcome[1][1] < outcome[30][1]
