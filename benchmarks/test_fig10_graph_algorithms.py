"""Fig 10: anomalies vs convergence for WCC and graph coloring.

Paper: on the uk-2007-05 graph, system configurations that converge
quickly also show low anomaly counts.  We sweep the chaos knobs
(latency, staleness) on the uk-2007-05 stand-in and report BUUs to
convergence alongside cycle rates.
"""

import statistics

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.graphalgo.coloring import AsyncColoring
from repro.graphalgo.wcc import AsyncWcc
from repro.sim.scheduler import SimConfig
from repro.workloads.datasets import scaled_real_graph_standin

CONFIGS = [
    ("calm", dict(write_latency=0, staleness_bound=1)),
    ("mild", dict(write_latency=200, staleness_bound=3)),
    ("wild", dict(write_latency=1500, staleness_bound=None)),
    ("wilder", dict(write_latency=4000, staleness_bound=None)),
]


def test_fig10_graph_algorithms(benchmark):
    def run():
        graph = scaled_real_graph_standin("uk-2007-05", scale=4e-6 * scale(10) / 10)
        rows = []
        outcome = {"wcc": [], "coloring": []}
        for label, knobs in CONFIGS:
            wcc = AsyncWcc(graph, SimConfig(num_workers=8, seed=10,
                                            compute_jitter=10, **knobs))
            wres = wcc.run(max_rounds=40)
            w2, w3 = wres.cycles_per_time()
            rows.append(("WCC", label, wres.buus_to_converge or "-",
                         round(1000 * w2, 2), round(1000 * w3, 2)))
            outcome["wcc"].append((w2 + w3, wres.buus_to_converge))

            col = AsyncColoring(graph, SimConfig(num_workers=8, seed=10,
                                                 compute_jitter=10, **knobs))
            cres = col.run(max_rounds=40)
            c2, c3 = cres.cycles_per_time()
            rows.append(("coloring", label, cres.buus_to_converge or "-",
                         round(1000 * c2, 2), round(1000 * c3, 2)))
            outcome["coloring"].append((c2 + c3, cres.buus_to_converge))
        emit(
            "fig10_graph_algorithms",
            format_table(
                "Fig 10: WCC / coloring convergence vs anomaly rates "
                "(uk-2007-05 stand-in)",
                ["algorithm", "config", "BUUs to conv", "2-cyc/kstep",
                 "3-cyc/kstep"],
                rows,
            ),
        )
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    for algo, points in outcome.items():
        # The calm configuration has the lowest anomaly rate, and no
        # configuration converges faster than it.
        calm_rate, calm_buus = points[0]
        wild_rate, wild_buus = points[-1]
        assert calm_rate <= wild_rate, algo
        if calm_buus is not None and wild_buus is not None:
            assert calm_buus <= wild_buus, algo
