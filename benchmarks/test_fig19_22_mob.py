"""Figs 19-22: memory-optimized bookkeeping (MOB) quality.

For each Table 1 parameter sweep (V, D, C, LB) and sampling rate, the
relative collector overhead (MOB / full readIDs) and the relative cycle
counts.  Paper: overhead ratio mostly 0.4-0.6, cycle ratio in
[0.98, 1.02].  Python's constant factors differ from the paper's
cache-line argument, so the overhead ratio is reported as measured.
"""

from repro.bench.harness import measure_collector, record_graph_workload, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector

RATES = (2, 5, 10, 20, 50, 100)

SWEEPS = [
    ("fig19", "num_vertices", None, "Fig 19: MOB vs #vertices"),
    ("fig20", "average_degree", [2, 5, 10, 15, 20], "Fig 20: MOB vs degree"),
    ("fig21", "num_workers", [2, 8, 32], "Fig 21: MOB vs #workers"),
    ("fig22", "degree_lower_bound", [0, 10, 20], "Fig 22: MOB vs degree LB"),
]


def _sweep(name, vary, values, title):
    rows = []
    ratios = []
    for value in values:
        kwargs = dict(num_vertices=scale(1500), average_degree=10,
                      num_workers=8, seed=19)
        kwargs[vary] = value
        run = record_graph_workload(num_buus=scale(1500), **kwargs)
        items = range(run.num_items)
        for sr in RATES:
            full = measure_collector(
                DataCentricCollector(sampling_rate=sr, mob=False, seed=3,
                                     items=items), run, "full")
            mob = measure_collector(
                DataCentricCollector(sampling_rate=sr, mob=True, seed=3,
                                     items=items), run, "mob")
            rel_overhead = mob.collect_seconds / max(full.collect_seconds, 1e-9)
            denom = full.estimated_2 + full.estimated_3
            rel_cycles = (
                (mob.estimated_2 + mob.estimated_3) / denom if denom else 1.0
            )
            rows.append((value, sr, round(rel_overhead, 3), round(rel_cycles, 3)))
            ratios.append((rel_overhead, rel_cycles, denom))
    emit(name, format_table(title, [vary, "sr", "rel overhead", "rel cycles"],
                            rows))
    return ratios


def test_fig19_22_mob(benchmark):
    def run():
        all_ratios = []
        for name, vary, values, title in SWEEPS:
            if values is None:
                values = [scale(800), scale(1500), scale(3000)]
            all_ratios.extend(_sweep(name, vary, values, title))
        return all_ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    import statistics

    # Known substrate deviation (EXPERIMENTS.md): the paper's 40-60%
    # overhead saving comes from replacing a heap-allocated set with a
    # cache-resident fixed array — a locality effect Python cannot
    # exhibit, so here the ratio only needs to stay near parity.  The
    # *accuracy* claim (relative cycles ~1) is asserted tightly.
    mean_overhead = statistics.mean(r[0] for r in ratios)
    assert mean_overhead < 1.4
    meaningful = [r[1] for r in ratios if r[2] >= 50]
    if meaningful:
        assert 0.85 <= statistics.mean(meaningful) <= 1.15
