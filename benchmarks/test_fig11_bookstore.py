"""Fig 11: database consistency violations vs isolation anomalies.

Paper: the online-bookstore workload, varying customers c, books per
order b and think time t; when anomalies are frequent, the violation
rate (orders that drive a stock negative) correlates strongly with the
2-/3-cycle counts.
"""

import statistics

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim.scheduler import SimConfig
from repro.workloads.bookstore import Bookstore, BookstoreConfig

GRID = [
    # (customers, books_per_order, think_time, write_latency)
    (4, 2, 10, 0),
    (8, 2, 20, 50),
    (8, 3, 30, 150),
    (16, 3, 30, 300),
    (16, 4, 50, 500),
    (24, 4, 50, 800),
    (32, 5, 80, 1200),
]


def test_fig11_bookstore(benchmark):
    def run():
        rows = []
        points = []
        for customers, books, think, latency in GRID:
            monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False,
                                            prune_interval=500))
            shop = Bookstore(
                BookstoreConfig(num_books=scale(60), customers=customers,
                                books_per_order=books, initial_stock=3,
                                think_time=think, curator_interval=300,
                                seed=11),
                SimConfig(num_workers=customers, seed=11,
                          write_latency=latency, compute_jitter=think),
            )
            shop.simulator.subscribe(monitor)
            counter = shop.run(scale(1200))
            e2, e3 = monitor.cumulative_estimates()
            t = max(1, shop.simulator.now)
            rows.append((customers, books, think, latency,
                         round(100 * counter.violation_rate, 2),
                         round(1000 * e2 / t, 2), round(1000 * e3 / t, 2)))
            points.append((counter.violation_rate, e2 / t + e3 / t))
        emit(
            "fig11_bookstore",
            format_table(
                "Fig 11: bookstore violation rate vs anomaly rates",
                ["customers", "books/order", "think", "latency",
                 "violation %", "2-cyc/kstep", "3-cyc/kstep"],
                rows,
            ),
        )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    violations = [v for v, _ in points]
    anomalies = [a for _, a in points]
    # Monotone association: rank correlation between violation rate and
    # anomaly rate is positive and strong.
    from repro.core.prediction import rank_correlation

    rho = rank_correlation(violations, anomalies)
    assert rho > 0.5, f"violations and anomalies decorrelated: rho={rho}"
    # the calmest config violates least
    assert violations[0] <= max(violations)
