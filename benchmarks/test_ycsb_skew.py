"""Extension bench: anomaly rate vs access skew (YCSB-style workload).

Not a paper figure, but a natural question for a monitor the paper
positions for weakly consistent key-value stores (§2.2): how does the
anomaly level respond to Zipfian skew?  Hot keys concentrate conflicts,
so the anomaly rate climbs steeply with theta — and the monitor's
sampled estimate tracks the exact count throughout.
"""

from repro.bench.figures import render_loglog
from repro.bench.harness import (
    measure_collector,
    record_workload_from_buus,
    scale,
)
from repro.bench.reporting import emit, format_table
from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

THETAS = (0.3, 0.5, 0.7, 0.9, 0.99)


def test_ycsb_skew(benchmark):
    def run():
        rows = []
        series_exact = []
        series_sampled = []
        for theta in THETAS:
            workload = YcsbWorkload(
                YcsbConfig(records=scale(500), keys_per_txn=2, read=0.2,
                           update=0.0, rmw=0.8, theta=theta, seed=60)
            )
            run_record = record_workload_from_buus(
                list(workload.buus(scale(1500))), scale(500),
                num_workers=16, seed=60, write_latency=100,
                compute_jitter=10,
            )
            exact = measure_collector(BaselineCollector(), run_record, "US")
            sampled = measure_collector(
                DataCentricCollector(sampling_rate=5, mob=True, seed=1,
                                     items=workload.items),
                run_record, "DCS",
            )
            total_exact = exact.estimated_2 + exact.estimated_3
            total_sampled = sampled.estimated_2 + sampled.estimated_3
            rows.append((theta, round(exact.estimated_2), round(exact.estimated_3),
                         round(total_sampled, 1)))
            series_exact.append(total_exact)
            series_sampled.append(total_sampled)
        table = format_table(
            "Extension: anomalies vs Zipfian skew (YCSB rmw-heavy mix)",
            ["theta", "exact 2-cyc", "exact 3-cyc", "DCS estimate (sr=5)"],
            rows,
        )
        chart = render_loglog(
            "anomalies vs skew (log-log)",
            [t * 100 for t in THETAS],
            {"exact": series_exact, "estimate": series_sampled},
            x_label="theta x100", y_label="cycles",
        )
        emit("ycsb_skew", table + "\n\n" + chart)
        return series_exact, series_sampled

    exact, sampled = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exact[0] < exact[-1]  # skew drives anomalies up
    # the sampled estimate tracks the exact trend
    assert sampled[-1] > sampled[0]
