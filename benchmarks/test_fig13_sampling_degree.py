"""Fig 13: sampling quality while varying the average degree D.

Paper: D ∈ {2, 5, 10, 15, 20}; with D = 2 the dependency graph has
(nearly) no 3-cycles.
"""

from _sampling_common import assert_sweep_sane, sampling_quality_sweep

from repro.bench.harness import scale


def test_fig13_sampling_degree(benchmark):
    def run():
        return sampling_quality_sweep(
            name="fig13_sampling_degree",
            title="Fig 13: sampling quality vs average degree",
            vary="average_degree",
            values=[2, 5, 10, 15, 20],
            num_buus=scale(2000),
            record_kwargs=dict(num_vertices=scale(2000), num_workers=8, seed=13),
        )

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_sweep_sane(checks)
