"""Fig 15: sampling quality while varying the degree lower bound LB.

Paper: LB ∈ {0, 5, 10, 15, 20} — a floor on vertex degree that raises
conflict density uniformly.
"""

from _sampling_common import assert_sweep_sane, sampling_quality_sweep

from repro.bench.harness import scale


def test_fig15_sampling_lowerbound(benchmark):
    def run():
        return sampling_quality_sweep(
            name="fig15_sampling_lowerbound",
            title="Fig 15: sampling quality vs degree lower bound",
            vary="degree_lower_bound",
            values=[0, 5, 10, 15, 20],
            num_buus=scale(2000),
            record_kwargs=dict(num_vertices=scale(2000), average_degree=10,
                               num_workers=8, seed=15),
        )

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_sweep_sane(checks)
