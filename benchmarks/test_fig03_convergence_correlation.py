"""Fig 3 (§3 micro benchmark): which knob correlates with convergence?

Paper: 50 ASGD runs varying batch size, number of cores, data size and
staleness; convergence speed (#BUUs to the optimum) is plotted against
each knob and against the measured 2-/3-cycle counts.  The cycle counts
correlate most strongly.  We reproduce the 50-run sweep and report
Spearman rank correlations (the quantitative version of "most
significantly correlated").
"""

import random

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.ml.async_sgd import AsyncTrainer
from repro.ml.optimizers import minibatch_asgd_buu
from repro.sim.scheduler import SimConfig
from repro.workloads.datasets import synthetic_click_dataset

BATCH_SIZES = (1, 2, 4, 8)
CORES = (4, 8, 16, 24)
DATA_SIZES = (150, 300, 450)
STALENESS = (1, 3, 10, None)
NON_CONVERGED = 10**6  # the paper assigns 1e6 BUUs to non-converged runs


from repro.core.prediction import rank_correlation as spearman


def _one_run(rng, run_seed):
    batch = rng.choice(BATCH_SIZES)
    cores = rng.choice(CORES)
    data_size = rng.choice(DATA_SIZES)
    staleness = rng.choice(STALENESS)
    dataset = synthetic_click_dataset(scale(data_size), scale(60), 5,
                                      rng=random.Random(31))
    trainer = AsyncTrainer(
        dataset, "asgd",
        SimConfig(num_workers=cores, seed=run_seed, write_latency=800,
                  staleness_bound=staleness, compute_jitter=20),
        learning_rate=0.55, batch_per_round=scale(100), seed=run_seed,
    )
    if batch > 1:
        # mini-batch BUUs: each BUU covers `batch` samples
        def round_buus():
            samples = [
                dataset.samples[trainer._rng.randrange(len(dataset.samples))]
                for _ in range(trainer.batch_per_round * batch)
            ]
            return [
                minibatch_asgd_buu(dataset, samples[i:i + batch],
                                   trainer.learning_rate)
                for i in range(0, len(samples), batch)
            ]

        trainer._round_buus = round_buus
    result = trainer.train(rounds=20, convergence_margin=0.03,
                           stop_at_convergence=True)
    c2, c3 = result.cycles_per_time()
    return {
        "batch": batch,
        "cores": cores,
        "data": data_size,
        "staleness": staleness if staleness is not None else 99,
        "c2_rate": c2,
        "c3_rate": c3,
        "convergence": result.buus_to_converge or NON_CONVERGED,
    }


def test_fig03_convergence_correlation(benchmark):
    def run():
        rng = random.Random(3)
        runs = [_one_run(rng, seed) for seed in range(scale(50, minimum=24))]
        rows = [
            (r["batch"], r["cores"], r["data"], r["staleness"],
             round(1000 * r["c2_rate"], 2), round(1000 * r["c3_rate"], 2),
             r["convergence"])
            for r in runs
        ]
        emit(
            "fig03_runs",
            format_table(
                "Fig 3 raw runs: parameters, anomaly rates and convergence",
                ["batch", "cores", "data", "staleness", "2-cyc/kstep",
                 "3-cyc/kstep", "BUUs to conv"],
                rows,
            ),
        )
        conv = [r["convergence"] for r in runs]
        correlations = {
            "batch size (3a)": abs(spearman([r["batch"] for r in runs], conv)),
            "num cores (3b)": abs(spearman([r["cores"] for r in runs], conv)),
            "data size (3c)": abs(spearman([r["data"] for r in runs], conv)),
            "staleness (3d)": abs(spearman([r["staleness"] for r in runs], conv)),
            "2-cycles (3e)": abs(spearman([r["c2_rate"] for r in runs], conv)),
            "3-cycles (3f)": abs(spearman([r["c3_rate"] for r in runs], conv)),
        }
        emit(
            "fig03_convergence_correlation",
            format_table(
                "Fig 3: |Spearman rank correlation| with convergence speed",
                ["factor", "|rho|"],
                [(k, round(v, 3)) for k, v in correlations.items()],
            ),
        )
        return correlations

    correlations = benchmark.pedantic(run, rounds=1, iterations=1)
    cycle_best = max(correlations["2-cycles (3e)"], correlations["3-cycles (3f)"])
    static_best = max(correlations["batch size (3a)"],
                      correlations["num cores (3b)"],
                      correlations["data size (3c)"])
    # The paper's conclusion: the cycle counts correlate with convergence
    # at least as strongly as any static knob.
    assert cycle_best >= static_best - 0.15
