"""Fig 23: rw / ww / wr edge-category counts, with and without MOB.

Paper: ww edges are about two orders of magnitude rarer than rw/wr in
the read-modify-write workload, which justifies MOB's single read slot.
"""

from repro.bench.harness import SAMPLING_RATES, measure_collector
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector


def test_fig23_edge_categories(benchmark, default_run):
    def run():
        items = range(default_run.num_items)
        rows = []
        result = {}
        for mob in (False, True):
            for sr in SAMPLING_RATES:
                m = measure_collector(
                    DataCentricCollector(sampling_rate=sr, mob=mob, seed=23,
                                         items=items),
                    default_run, f"mob={mob} sr={sr}",
                )
                stats = m.edge_stats
                rows.append(("with MOB" if mob else "no MOB", sr,
                             stats["rw"], stats["ww"], stats["wr"]))
                result[(mob, sr)] = stats
        emit(
            "fig23_edge_categories",
            format_table(
                "Fig 23: edge categories vs sampling rate",
                ["bookkeeping", "sr", "rw", "ww", "wr"],
                rows,
            ),
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # The workload is read-modify-write, so ww edges are rare relative
    # to rw/wr — the paper's justification for MOB's 1-slot design.
    full = result[(False, 1)]
    assert full["ww"] * 10 < full["rw"] + full["wr"]
