"""Fig 17 + Table 2: sampling quality on the real-dataset stand-ins.

Paper: friendster / twitter-mpi / sk-2005 / uk-2007-05 (Table 2) plus the
Criteo click data, 32 cores, LB = 0.  The real graphs are unavailable
offline; scaled preferential-attachment stand-ins with matching average
degree take their place (DESIGN.md §2).
"""

import random

from repro.bench.harness import (
    SAMPLING_RATES,
    measure_collector,
    record_workload_from_buus,
    scale,
)
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector
from repro.ml.optimizers import asgd_buu
from repro.workloads.datasets import (
    REAL_GRAPH_SPECS,
    scaled_real_graph_standin,
    synthetic_click_dataset,
)
from repro.workloads.graph_workload import GraphWorkload, GraphWorkloadConfig


def _graph_run(name, num_buus, workers):
    graph = scaled_real_graph_standin(name, scale=2e-5 * scale(10) / 10)
    workload = GraphWorkload(
        GraphWorkloadConfig(num_vertices=graph.num_vertices, seed=1),
        graph=graph,
    )
    return (
        record_workload_from_buus(
            list(workload.buus(num_buus)), graph.num_vertices,
            num_workers=workers, seed=17,
        ),
        range(graph.num_vertices),
    )


def _criteo_run(num_buus, workers):
    dataset = synthetic_click_dataset(scale(400), scale(150), 6,
                                      rng=random.Random(17))
    rng = random.Random(3)
    buus = [
        asgd_buu(dataset, dataset.samples[rng.randrange(len(dataset.samples))],
                 lr=0.05)
        for _ in range(num_buus)
    ]
    return (
        record_workload_from_buus(buus, dataset.num_features,
                                  num_workers=workers, seed=18),
        dataset.weight_keys,
    )


def test_fig17_real_graphs(benchmark):
    def run():
        table2 = [
            (name, spec["vertices"], spec["edges"], spec["degree"])
            for name, spec in REAL_GRAPH_SPECS.items()
        ]
        emit(
            "table2_real_datasets",
            format_table(
                "Table 2: the four real graph datasets (as in the paper; "
                "stand-ins are scaled preferential-attachment graphs)",
                ["dataset", "|V|", "|E|", "|E|/|V|"],
                table2,
            ),
        )

        num_buus = scale(1500)
        rows = []
        sane = []
        runs = {name: _graph_run(name, num_buus, 8)
                for name in REAL_GRAPH_SPECS}
        runs["criteo"] = _criteo_run(num_buus, 8)
        for name, (history, items) in runs.items():
            truth = measure_collector(
                DataCentricCollector(sampling_rate=1, mob=False),
                history, "truth",
            )
            for sr in SAMPLING_RATES:
                collector = DataCentricCollector(sampling_rate=sr, mob=False,
                                                 seed=4, items=items)
                m = measure_collector(collector, history, f"sr={sr}")
                rows.append((name, sr,
                             round(m.overhead_percent(history.app_seconds), 2),
                             m.edges, m.raw.two_cycles, m.raw.three_cycles,
                             round(m.estimated_2, 1), round(m.estimated_3, 1)))
                if sr == 5:
                    sane.append((name, truth, m))
        emit(
            "fig17_real_graphs",
            format_table(
                "Fig 17: sampling quality on real-dataset stand-ins",
                ["dataset", "sr", "overhead%", "edges", "raw 2-cyc",
                 "raw 3-cyc", "est 2-cyc", "est 3-cyc"],
                rows,
            ),
        )
        return sane

    sane = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, truth, mid in sane:
        assert mid.edges < truth.edges
        if mid.raw.two_cycles >= 20:
            assert 0.3 <= mid.estimated_2 / max(truth.estimated_2, 1e-9) <= 3.0
