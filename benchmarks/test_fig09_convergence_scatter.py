"""Fig 9: anomalies separate convergent from divergent configurations,
for ASGD, ASGD-with-momentum and RMSprop.

Paper: a grid over system latency, mini-batching, step length and
staleness; each configuration is a dot (cycles, convergence), coloured
convergent/divergent.  The anomaly level correlates with whether a
configuration converges.
"""

import random
import statistics

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.ml.async_sgd import AsyncTrainer
from repro.sim.scheduler import SimConfig
from repro.workloads.datasets import synthetic_click_dataset

OPTIMIZERS = ("asgd", "asgdm", "rmsprop")
LATENCIES = (100, 800)
STALENESS = (1, 3, None)
LEARNING_RATES = {"asgd": (0.3, 0.6), "asgdm": (0.05, 0.15),
                  "rmsprop": (0.02, 0.08)}


def test_fig09_convergence_scatter(benchmark):
    def run():
        dataset = synthetic_click_dataset(scale(300), scale(60), 5,
                                          rng=random.Random(9))
        rows = []
        points = {name: [] for name in OPTIMIZERS}
        for name in OPTIMIZERS:
            for latency in LATENCIES:
                for bound in STALENESS:
                    for lr in LEARNING_RATES[name]:
                        trainer = AsyncTrainer(
                            dataset, name,
                            SimConfig(num_workers=16, seed=9,
                                      write_latency=latency,
                                      staleness_bound=bound,
                                      compute_jitter=20),
                            learning_rate=lr,
                            batch_per_round=scale(100), seed=9,
                        )
                        result = trainer.train(rounds=15,
                                               convergence_margin=0.03,
                                               stop_at_convergence=True)
                        c2, c3 = result.cycles_per_time()
                        verdict = "convergent" if result.converged else "divergent"
                        rows.append((name, latency,
                                     bound if bound is not None else "inf",
                                     lr, round(1000 * c2, 1),
                                     round(1000 * c3, 1),
                                     result.buus_to_converge or "-", verdict))
                        points[name].append((c2 + c3, result.converged))
        emit(
            "fig09_convergence_scatter",
            format_table(
                "Fig 9: per-configuration anomaly rates and convergence "
                "verdicts",
                ["optimizer", "latency", "staleness", "lr", "2-cyc/kstep",
                 "3-cyc/kstep", "BUUs to conv", "verdict"],
                rows,
            ),
        )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    # Pool all optimizers: divergent configurations sit at higher anomaly
    # rates on average than convergent ones.
    convergent = [rate for p in points.values() for rate, ok in p if ok]
    divergent = [rate for p in points.values() for rate, ok in p if not ok]
    assert convergent, "no configuration converged — grid mis-tuned"
    assert divergent, "every configuration converged — grid mis-tuned"
    assert statistics.mean(divergent) > statistics.mean(convergent)
