"""Fig 2 (§3 micro benchmark): cycles of length 2-5 vs synchronization
frequency, plus the G(n, p) theory check.

Paper: a 32-worker system with a global barrier every F BUUs,
F ∈ {1, 2, 5, 10, 20, 50, 100}.  All cycle-length counts grow together
with F, and longer cycles grow faster — the basis for the 2-/3-cycle
conjecture.
"""

import random

from repro.bench.harness import record_graph_workload, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import BaselineCollector
from repro.graph.cycles import count_simple_cycles_by_length
from repro.graph.dependency import DependencyGraph
from repro.graph.random_graphs import directed_gnp, expected_k_cycles
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator
from repro.bench.harness import HistoryRecorder
from repro.workloads.graph_workload import GraphWorkload, GraphWorkloadConfig

FREQUENCIES = (1, 2, 5, 10, 20, 50, 100)


def _cycles_at_frequency(freq, num_buus, num_vertices, workers):
    workload = GraphWorkload(
        GraphWorkloadConfig(num_vertices=num_vertices, average_degree=8,
                            seed=freq),
    )
    recorder = HistoryRecorder()
    sim = Simulator(
        SimConfig(num_workers=workers, seed=2, write_latency=40,
                  compute_jitter=5, sync_frequency=freq),
        listeners=[recorder],
    )
    sim.run(workload.buus(num_buus))
    graph = DependencyGraph()
    graph.add_edges(BaselineCollector().handle_all(recorder.ops))
    return count_simple_cycles_by_length(graph, max_length=5)


def test_fig02_sync_frequency(benchmark):
    def run():
        rows = []
        series = {}
        for freq in FREQUENCIES:
            counts = _cycles_at_frequency(
                freq, num_buus=scale(1200), num_vertices=scale(400), workers=8
            )
            rows.append((freq, counts[2], counts[3], counts[4], counts[5]))
            series[freq] = counts
        emit(
            "fig02_sync_frequency",
            format_table(
                "Fig 2: cycles by length vs synchronization frequency",
                ["sync freq", "2-cycles", "3-cycles", "4-cycles", "5-cycles"],
                rows,
            ),
        )
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    # Barriers every BUU produce far fewer cycles than barriers every 100.
    total = lambda c: c[2] + c[3] + c[4] + c[5]
    assert total(series[1]) < total(series[100])
    # Longer cycles grow faster: the long/short ratio increases with F.
    lo, hi = series[1], series[100]
    ratio_lo = (lo[4] + lo[5] + 1) / (lo[2] + lo[3] + 1)
    ratio_hi = (hi[4] + hi[5] + 1) / (hi[2] + hi[3] + 1)
    assert ratio_hi >= ratio_lo


def test_fig02_gnp_theory(benchmark):
    """§3's closed form E[#k-cycles] = n!/(n-k)!/k * p^k, checked
    empirically on directed G(n, p)."""

    def run():
        n, p, trials = 14, 0.12, scale(120)
        totals = {2: 0, 3: 0}
        for seed in range(trials):
            graph = directed_gnp(n, p, random.Random(seed))
            counts = count_simple_cycles_by_length(graph, max_length=3)
            totals[2] += counts[2]
            totals[3] += counts[3]
        rows = [
            (k, round(totals[k] / trials, 2), round(expected_k_cycles(n, p, k), 2))
            for k in (2, 3)
        ]
        emit(
            "fig02_gnp_theory",
            format_table(
                f"Section 3 theory check: G({n}, {p}) expected k-cycles "
                f"({trials} trials)",
                ["k", "empirical mean", "theory"],
                rows,
            ),
        )
        return {k: (totals[k] / trials, expected_k_cycles(n, p, k))
                for k in (2, 3)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, (empirical, theory) in result.items():
        assert abs(empirical - theory) / theory < 0.35
