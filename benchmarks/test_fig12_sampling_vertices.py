"""Fig 12: sampling quality while varying the number of vertices V.

Paper: V ∈ {1, 2, 5, 10, 20} million; overhead falls with the sampling
rate while the estimated cycle counts track the unsampled truth.
"""

from _sampling_common import assert_sweep_sane, sampling_quality_sweep

from repro.bench.harness import scale


def test_fig12_sampling_vertices(benchmark):
    def run():
        return sampling_quality_sweep(
            name="fig12_sampling_vertices",
            title="Fig 12: sampling quality vs number of vertices "
                  "(paper: V in 1..20 million, scaled)",
            vary="num_vertices",
            values=[scale(v) for v in (500, 1000, 2000, 4000)],
            num_buus=scale(2000),
            record_kwargs=dict(average_degree=10, num_workers=8, seed=12),
        )

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_sweep_sane(checks)
