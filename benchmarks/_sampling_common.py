"""Shared sweep logic for the Fig 12-15 sampling-quality benches."""

from repro.bench.figures import render_loglog
from repro.bench.harness import (
    SAMPLING_RATES,
    measure_collector,
    record_graph_workload,
)
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector


def sampling_quality_sweep(name, title, vary, values, num_buus, record_kwargs):
    """For each value of the varied parameter, replay the recorded history
    through DCS at every sampling rate; report overhead, edges and both
    raw and estimated cycle counts (the paper plots the raw readings in
    Figs 12-15 and the estimates in Fig 18)."""
    rows = []
    checks = []
    for value in values:
        kwargs = dict(record_kwargs)
        kwargs[vary] = value
        run = record_graph_workload(num_buus=num_buus, **kwargs)
        items = range(run.num_items)
        truth = measure_collector(
            DataCentricCollector(sampling_rate=1, mob=False), run, "truth"
        )
        sweep = []
        for sr in SAMPLING_RATES:
            # Items are sampled up front (§5.1), so membership is an O(1)
            # set probe — the unsampled path pays nothing per miss.
            collector = DataCentricCollector(sampling_rate=sr, mob=False,
                                             seed=7, items=items)
            m = measure_collector(collector, run, f"sr={sr}")
            rows.append(
                (
                    value,
                    sr,
                    round(m.overhead_percent(run.app_seconds), 2),
                    m.edges,
                    m.raw.two_cycles,
                    m.raw.three_cycles,
                    round(m.estimated_2, 1),
                    round(m.estimated_3, 1),
                )
            )
            sweep.append(m)
        checks.append((value, truth, sweep))
    table = format_table(
        title,
        [vary, "sr", "overhead%", "edges", "raw 2-cyc", "raw 3-cyc",
         "est 2-cyc", "est 3-cyc"],
        rows,
    )
    overhead_series = {}
    raw_series = {}
    for value, _truth, sweep in checks:
        overhead_series[f"{vary}={value}"] = [
            m.collect_seconds for m in sweep
        ]
        raw_series[f"{vary}={value}"] = [m.raw.two_cycles for m in sweep]
    chart_overhead = render_loglog(
        "collector seconds vs sampling rate (log-log; falls ~1/sr)",
        list(SAMPLING_RATES), overhead_series, x_label="sr", y_label="sec",
    )
    chart_counts = render_loglog(
        "raw sampled 2-cycles vs sampling rate (log-log)",
        list(SAMPLING_RATES), raw_series, x_label="sr", y_label="2cyc",
    )
    emit(name, table + "\n\n" + chart_overhead + "\n\n" + chart_counts)
    return checks


def assert_sweep_sane(checks):
    """Shape assertions shared by Figs 12-15:

    - sampling reduces collector overhead (sr=100 cheaper than sr=1);
    - sampled edges decrease with sr;
    - mid-rate estimates stay within a factor of the truth whenever the
      raw sampled counts are not too tiny (the paper's own caveat).
    """
    for value, truth, sweep in checks:
        by_rate = {m.label: m for m in sweep}
        full = by_rate["sr=1"]
        tiny = by_rate["sr=100"]
        assert tiny.collect_seconds < full.collect_seconds
        assert tiny.edges < full.edges
        mid = by_rate["sr=5"]
        if mid.raw.two_cycles >= 20:
            assert 0.3 <= mid.estimated_2 / max(truth.estimated_2, 1e-9) <= 3.0
        assert full.estimated_2 == truth.estimated_2
