"""Fig 16: estimator variance across repeated item samples.

Paper: quantiles of the cycle-count estimate over 1,000 runs at the
default parameters — variance small relative to the absolute value, and
growing with the sampling rate.  We use fewer trials (scaled) and report
relative quantiles (estimate / truth).
"""

import statistics

from repro.bench.harness import measure_collector, record_graph_workload, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector

RATES = (2, 5, 10, 20, 50)


def test_fig16_estimation_variance(benchmark):
    def run():
        history = record_graph_workload(
            num_buus=scale(1500), num_vertices=scale(1200),
            average_degree=10, num_workers=8, seed=16,
        )
        items = range(history.num_items)
        truth = measure_collector(
            DataCentricCollector(sampling_rate=1, mob=False), history, "truth"
        )
        trials = scale(60, minimum=20)
        rows = []
        spread = {}
        for sr in RATES:
            estimates = []
            for trial in range(trials):
                collector = DataCentricCollector(
                    sampling_rate=sr, mob=False, seed=trial, items=items
                )
                m = measure_collector(collector, history, f"sr={sr}",
                                      pruning="both")
                estimates.append(m.estimated_2 / max(truth.estimated_2, 1e-9))
            estimates.sort()
            p10 = estimates[int(0.1 * (len(estimates) - 1))]
            p90 = estimates[int(0.9 * (len(estimates) - 1))]
            mean = statistics.mean(estimates)
            rows.append((sr, round(p10, 3), round(statistics.median(estimates), 3),
                         round(p90, 3), round(mean, 3)))
            spread[sr] = (mean, p90 - p10)
        emit(
            "fig16_estimation_variance",
            format_table(
                "Fig 16: relative 2-cycle estimate quantiles over "
                f"{trials} item samples (1.0 = exact)",
                ["sr", "p10", "median", "p90", "mean"],
                rows,
            ),
        )
        return spread

    spread = benchmark.pedantic(run, rounds=1, iterations=1)
    # Means hover near 1 (unbiasedness) and spread grows with the rate.
    assert 0.6 <= spread[2][0] <= 1.4
    assert spread[50][1] >= spread[2][1]
