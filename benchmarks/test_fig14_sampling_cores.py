"""Fig 14: sampling quality while varying the number of workers C.

Paper: C ∈ {2, 4, 8, 16, 32, 64, 128}; estimation is accurate unless the
true count is very low (the low-C lines).
"""

from _sampling_common import assert_sweep_sane, sampling_quality_sweep

from repro.bench.harness import scale


def test_fig14_sampling_cores(benchmark):
    def run():
        return sampling_quality_sweep(
            name="fig14_sampling_cores",
            title="Fig 14: sampling quality vs number of workers",
            vary="num_workers",
            values=[2, 4, 8, 16, 32, 64, 128],
            num_buus=scale(2000),
            record_kwargs=dict(num_vertices=scale(2000), average_degree=10,
                               seed=14),
        )

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_sweep_sane(checks)
