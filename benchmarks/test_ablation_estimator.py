"""Ablation: why Theorem 5.2's label-class weights are necessary.

Data-centric sampling keeps edges on one item *together*, so the naive
independent-edge estimator (divide every 2-cycle by p², every 3-cycle by
p³) systematically overestimates: an ss 2-cycle survives with
probability p, not p².  This bench runs many item samples and compares
the mean of both estimators against the exact count — the quantitative
version of the paper's §5.1 "the conventional estimation ... does not
work at all".
"""

import statistics

from repro.bench.harness import measure_collector, record_graph_workload, scale
from repro.bench.reporting import emit, format_table
from repro.core.collector import DataCentricCollector
from repro.core.estimator import (
    estimate_edge_sampled_two_cycles,
    estimate_two_cycles,
)

RATES = (2, 5, 10)


def test_ablation_estimator_bias(benchmark):
    def run():
        history = record_graph_workload(
            num_buus=scale(1500), num_vertices=scale(1200), seed=40,
        )
        items = range(history.num_items)
        truth = measure_collector(
            DataCentricCollector(sampling_rate=1, mob=False), history, "truth"
        ).estimated_2
        trials = scale(50, minimum=25)
        rows = []
        result = {}
        for sr in RATES:
            theorem, naive = [], []
            for trial in range(trials):
                collector = DataCentricCollector(sampling_rate=sr, mob=False,
                                                 seed=trial, items=items)
                m = measure_collector(collector, history, f"sr={sr}")
                p = 1.0 / sr
                theorem.append(estimate_two_cycles(m.raw, p))
                naive.append(estimate_edge_sampled_two_cycles(m.raw, p))
            mean_theorem = statistics.mean(theorem) / truth
            mean_naive = statistics.mean(naive) / truth
            rows.append((sr, round(mean_theorem, 3), round(mean_naive, 3)))
            result[sr] = (mean_theorem, mean_naive)
        emit(
            "ablation_estimator_bias",
            format_table(
                f"Ablation: relative mean 2-cycle estimate over {trials} "
                "samples (1.0 = unbiased)",
                ["sr", "Theorem 5.2 estimator", "naive 1/p^2 estimator"],
                rows,
            ),
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    for sr, (theorem, naive) in result.items():
        # The label-aware estimator is unbiased; the naive one inflates
        # every same-item cycle by an extra factor of sr.
        assert abs(theorem - 1.0) < 0.35
        assert naive > theorem * 1.3
