"""Ablation: the isolation controller (Fig 4's greyed-out box).

The paper's premise is that ITAs run *without* isolation because strong
isolation costs throughput.  This bench quantifies both sides on the
same workload: conservative-2PL serializable execution eliminates every
anomaly and every bookstore violation — at a simulated-time cost.
"""

from repro.bench.harness import scale
from repro.bench.reporting import emit, format_table
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim.scheduler import SimConfig
from repro.workloads.bookstore import Bookstore, BookstoreConfig


def _run(isolation):
    monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
    shop = Bookstore(
        BookstoreConfig(num_books=scale(40), customers=16,
                        books_per_order=3, initial_stock=3,
                        think_time=20, seed=42),
        SimConfig(num_workers=16, seed=42, write_latency=200,
                  compute_jitter=20, isolation=isolation),
    )
    shop.simulator.subscribe(monitor)
    counter = shop.run(scale(800))
    e2, e3 = monitor.cumulative_estimates()
    return {
        "violations": counter.violation_rate,
        "anomalies": e2 + e3,
        "sim_time": shop.simulator.now,
    }


def test_ablation_isolation_controller(benchmark):
    def run():
        return {iso: _run(iso) for iso in ("none", "serializable")}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (iso, round(100 * r["violations"], 2), round(r["anomalies"], 1),
         r["sim_time"])
        for iso, r in result.items()
    ]
    emit(
        "ablation_isolation_controller",
        format_table(
            "Ablation: no isolation vs serializable (conservative 2PL), "
            "bookstore workload",
            ["isolation", "violation %", "anomalies", "sim time"],
            rows,
        ),
    )
    none, ser = result["none"], result["serializable"]
    assert ser["violations"] == 0.0
    assert ser["anomalies"] == 0.0
    assert none["anomalies"] > 0
    assert ser["sim_time"] > none["sim_time"]  # the throughput price
